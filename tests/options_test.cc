// Tests for the per-request RequestOptions contract: deadline budgets
// (clamped timeouts, budget-aware retries, kDeadlineExceeded shedding,
// per-template SLA accounting), per-request staleness overriding the
// deployment spec on both cache-hit and cache-miss paths, session version
// floors enforced on cache hits, WITH-clause parsing/validation, and the
// parallel MultiScan stitching.

#include <memory>
#include <string>
#include <vector>

#include "cache/cache_directory.h"
#include "cluster/cluster_state.h"
#include "cluster/node.h"
#include "cluster/partition.h"
#include "cluster/router.h"
#include "common/metrics.h"
#include "common/request_options.h"
#include "consistency/session.h"
#include "consistency/sla.h"
#include "core/scads.h"
#include "gtest/gtest.h"
#include "index/scan.h"
#include "query/parser.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace scads {
namespace {

constexpr NodeId kClient = 1000;

// A small in-process cluster (mirrors cluster_test's harness).
struct TestCluster {
  EventLoop loop;
  SimNetwork network;
  ClusterState cluster;
  std::vector<std::unique_ptr<StorageNode>> nodes;
  std::unique_ptr<Router> router;

  TestCluster(int node_count, int replication_factor,
              RouterConfig router_config = RouterConfig{})
      : network(&loop, 7) {
    std::vector<NodeId> ids;
    for (int i = 0; i < node_count; ++i) {
      auto node = std::make_unique<StorageNode>(i, &loop, &network, &cluster, NodeConfig{},
                                                1000 + static_cast<uint64_t>(i));
      EXPECT_TRUE(cluster.AddNode(i, node.get()).ok());
      node->Start();
      nodes.push_back(std::move(node));
      ids.push_back(i);
    }
    auto map = PartitionMap::Create({"g", "p"}, ids, replication_factor);
    EXPECT_TRUE(map.ok());
    cluster.set_partitions(std::move(map).value());
    router = std::make_unique<Router>(kClient, &loop, &network, &cluster, router_config, 99);
  }

  void RunUntil(const bool& done) {
    for (int i = 0; i < 1000000 && !done; ++i) {
      if (!loop.RunOne()) loop.RunFor(kMillisecond);
    }
    EXPECT_TRUE(done);
  }

  Status PutSync(const std::string& key, const std::string& value,
                 AckMode ack = AckMode::kPrimary) {
    Status out = InternalError("callback never ran");
    bool done = false;
    router->Put(key, value, ack, RequestOptions{}, [&](Status s) {
      out = std::move(s);
      done = true;
    });
    RunUntil(done);
    return out;
  }

  Result<Record> GetSync(const std::string& key, RequestOptions options) {
    Result<Record> out(InternalError("callback never ran"));
    bool done = false;
    router->Get(key, std::move(options), [&](Result<Record> r) {
      out = std::move(r);
      done = true;
    });
    RunUntil(done);
    return out;
  }

  std::vector<Result<Record>> MultiGetSync(const std::vector<std::string>& keys,
                                           RequestOptions options) {
    std::vector<Result<Record>> out;
    bool done = false;
    router->MultiGet(keys, std::move(options), [&](std::vector<Result<Record>> results) {
      out = std::move(results);
      done = true;
    });
    RunUntil(done);
    return out;
  }
};

// ------------------------------------------------------ deadline budgets --

TEST(DeadlineTest, RetryUsedWithAmpleBudgetButSkippedWhenBudgetGone) {
  // Primary-first reads with the primary cut off: a read with no deadline
  // retries onto the surviving replica; the same read under a budget
  // smaller than one attempt timeout sheds with kDeadlineExceeded instead.
  RouterConfig config;
  config.read_target = ReadTarget::kPrimary;  // deterministic first choice
  TestCluster tc(2, 2, config);
  ASSERT_TRUE(tc.PutSync("apple", "v", AckMode::kAll).ok());
  NodeId primary = tc.cluster.partitions()->ForKey("apple").primary();
  tc.network.SetPartitionGroup(primary, 42);

  Result<Record> unbounded = tc.GetSync("apple", RequestOptions{});
  ASSERT_TRUE(unbounded.ok()) << unbounded.status();
  EXPECT_EQ(unbounded->value, "v");
  EXPECT_EQ(tc.router->window().deadline_exceeded, 0);

  RequestOptions bounded;
  bounded.deadline = 50 * kMillisecond;  // < one 250ms attempt timeout
  Time start = tc.loop.Now();
  Result<Record> shed = tc.GetSync("apple", bounded);
  EXPECT_EQ(shed.status().code(), StatusCode::kDeadlineExceeded) << shed.status();
  // The first attempt's timeout was clamped to the budget: the call sheds
  // at ~50ms, not after the full 250ms timeout plus a retry.
  EXPECT_LE(tc.loop.Now() - start, 60 * kMillisecond);
  EXPECT_EQ(tc.router->window().deadline_exceeded, 1);
}

TEST(DeadlineTest, AmpleBudgetStillSucceedsThroughRetry) {
  RouterConfig config;
  config.read_target = ReadTarget::kPrimary;
  TestCluster tc(2, 2, config);
  ASSERT_TRUE(tc.PutSync("apple", "v", AckMode::kAll).ok());
  tc.network.SetPartitionGroup(tc.cluster.partitions()->ForKey("apple").primary(), 42);
  RequestOptions bounded;
  bounded.deadline = 2 * kSecond;  // room for timeout + retry
  Result<Record> got = tc.GetSync("apple", bounded);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->value, "v");
  EXPECT_EQ(tc.router->window().deadline_exceeded, 0);
}

TEST(DeadlineTest, MultiGetShedsOnlyTheStarvedSubBatchMidFanOut) {
  // Two nodes, rf=1: keys split between them. Cut one node off and give the
  // batch a budget below one attempt timeout: keys on the live node are
  // answered, keys on the dead node shed kDeadlineExceeded when the budget
  // expires — the fan-out degrades per-key instead of failing wholesale.
  TestCluster tc(2, 1);
  ASSERT_TRUE(tc.PutSync("apple", "va").ok());   // partition 0
  ASSERT_TRUE(tc.PutSync("hello", "vh").ok());   // partition 1
  NodeId dead = tc.cluster.partitions()->ForKey("hello").primary();
  NodeId live = tc.cluster.partitions()->ForKey("apple").primary();
  ASSERT_NE(dead, live);
  tc.network.SetPartitionGroup(dead, 42);

  RequestOptions bounded;
  bounded.deadline = 50 * kMillisecond;
  auto out = tc.MultiGetSync({"apple", "hello"}, bounded);
  ASSERT_EQ(out.size(), 2u);
  ASSERT_TRUE(out[0].ok()) << out[0].status();
  EXPECT_EQ(out[0]->value, "va");
  EXPECT_EQ(out[1].status().code(), StatusCode::kDeadlineExceeded) << out[1].status();
  EXPECT_EQ(tc.router->window().deadline_exceeded, 1);
}

TEST(DeadlineTest, ExpiredBudgetShedsWritesAndReadsAtEntry) {
  TestCluster tc(1, 1);
  ASSERT_TRUE(tc.PutSync("apple", "v").ok());
  RequestOptions expired;
  expired.deadline_at = 1;  // armed in the past
  Result<Record> read = tc.GetSync("apple", expired);
  EXPECT_EQ(read.status().code(), StatusCode::kDeadlineExceeded);

  Status write = InternalError("pending");
  bool done = false;
  tc.router->Put("apple", "v2", AckMode::kPrimary, expired, [&](Status s) {
    write = std::move(s);
    done = true;
  });
  tc.RunUntil(done);
  EXPECT_EQ(write.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(tc.router->window().deadline_exceeded, 2);
}

TEST(PriorityTest, LowPriorityReadShedsInsteadOfRetrying) {
  RouterConfig config;
  config.read_target = ReadTarget::kPrimary;
  TestCluster tc(2, 2, config);
  ASSERT_TRUE(tc.PutSync("apple", "v", AckMode::kAll).ok());
  tc.network.SetPartitionGroup(tc.cluster.partitions()->ForKey("apple").primary(), 42);
  RequestOptions low;
  low.priority = RequestPriority::kLow;
  Time start = tc.loop.Now();
  Result<Record> got = tc.GetSync("apple", low);
  // No replica alternates for low priority: one timeout, then unavailable.
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  EXPECT_LE(tc.loop.Now() - start, RouterConfig{}.request_timeout + 10 * kMillisecond);
}

// -------------------------------------------- session floor on cache hits --

TEST(SessionFloorTest, MinVersionBypassesOlderCacheEntry) {
  TestCluster tc(1, 1);
  MetricRegistry metrics;
  CacheDirectory cache(CacheConfig{/*enabled=*/true}, /*staleness_bound=*/0, &metrics);
  tc.router->set_cache(&cache);

  ASSERT_TRUE(tc.PutSync("k", "new").ok());  // write-through caches the ack
  // Simulate another router's stale view: force an older entry in.
  Version old_version{1, 0};
  ASSERT_TRUE(cache.point_cache()->Erase("k"));
  cache.point_cache()->Insert("k", "old", old_version, tc.loop.Now());

  // Unpinned read: served from cache — the stale value.
  Result<Record> unpinned = tc.GetSync("k", RequestOptions{});
  ASSERT_TRUE(unpinned.ok());
  EXPECT_EQ(unpinned->value, "old");

  // A version floor above the cached entry bypasses it to storage.
  RequestOptions pinned;
  pinned.min_version = Version{2, 0};
  Result<Record> floored = tc.GetSync("k", pinned);
  ASSERT_TRUE(floored.ok()) << floored.status();
  EXPECT_EQ(floored->value, "new");
  EXPECT_EQ(metrics.CounterValue("cache.point.version_bypasses"), 1);
}

TEST(SessionFloorTest, ReadYourWritesHoldsOnCacheHitWithoutFallback) {
  TestCluster tc(2, 2);
  MetricRegistry metrics;
  CacheDirectory cache(CacheConfig{/*enabled=*/true}, /*staleness_bound=*/0, &metrics);
  tc.router->set_cache(&cache);
  SessionGuarantees guarantees;
  guarantees.read_your_writes = true;
  SessionClient session(ScadsClient{tc.router.get()}, guarantees);

  tc.loop.RunFor(kSecond);  // so the write's version outranks the poison below
  Status put = InternalError("pending");
  bool put_done = false;
  session.Put("wall", "post-2", AckMode::kAll, RequestOptions{}, [&](Status s) {
    put = std::move(s);
    put_done = true;
  });
  tc.RunUntil(put_done);
  ASSERT_TRUE(put.ok());

  // Poison the cache with the predecessor value, as a lagging replica's
  // response would have before the invalidation-marker protections.
  ASSERT_TRUE(cache.point_cache()->Erase("wall"));
  cache.point_cache()->Insert("wall", "post-1", Version{1, 0}, tc.loop.Now());

  Result<Record> got(InternalError("pending"));
  bool done = false;
  session.Get("wall", RequestOptions{}, [&](Result<Record> r) {
    got = std::move(r);
    done = true;
  });
  tc.RunUntil(done);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->value, "post-2");
  // The session token bypassed the poisoned entry up front: one storage
  // read, no stale first answer, no primary fallback.
  EXPECT_EQ(session.first_try_reads(), 1);
  EXPECT_EQ(session.guarantee_fallbacks(), 0);
  EXPECT_EQ(metrics.CounterValue("cache.point.version_bypasses"), 1);
}

// ------------------------------------------------- parallel MultiScan -----

TEST(ParallelScanTest, StitchesAcrossPartitionsInKeyOrder) {
  TestCluster tc(3, 1);
  // Keys spanning all three partitions (boundaries "g" and "p").
  std::vector<std::string> keys = {"ant", "bat", "gnu", "hen", "pig", "yak"};
  for (const auto& key : keys) ASSERT_TRUE(tc.PutSync(key, "v:" + key).ok());

  Result<std::vector<Record>> got(InternalError("pending"));
  bool done = false;
  MultiScan(tc.router.get(), &tc.cluster, "", "", 0, RequestOptions{},
            [&](Result<std::vector<Record>> r) {
              got = std::move(r);
              done = true;
            });
  tc.RunUntil(done);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_EQ(got->size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ((*got)[i].key, keys[i]);
    EXPECT_EQ((*got)[i].value, "v:" + keys[i]);
  }
}

TEST(ParallelScanTest, LimitTruncatesAcrossSubRanges) {
  TestCluster tc(3, 1);
  std::vector<std::string> keys = {"ant", "bat", "gnu", "hen", "pig", "yak"};
  for (const auto& key : keys) ASSERT_TRUE(tc.PutSync(key, "v").ok());
  Result<std::vector<Record>> got(InternalError("pending"));
  bool done = false;
  MultiScan(tc.router.get(), &tc.cluster, "", "", 4, RequestOptions{},
            [&](Result<std::vector<Record>> r) {
              got = std::move(r);
              done = true;
            });
  tc.RunUntil(done);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ((*got)[i].key, keys[i]);
}

TEST(ParallelScanTest, LimitSatisfiedScanToleratesTrailingPartitionFailure) {
  TestCluster tc(3, 1);
  std::vector<std::string> keys = {"ant", "bat", "gnu", "hen"};
  for (const auto& key : keys) ASSERT_TRUE(tc.PutSync(key, "v").ok());
  // Kill the last partition's only replica. A limit the earlier partitions
  // can satisfy must still succeed (the sequential stitcher never contacted
  // that partition); an unlimited scan genuinely needs it and must fail.
  tc.network.SetPartitionGroup(tc.cluster.partitions()->ForKey("zebra").primary(), 42);

  Result<std::vector<Record>> limited(InternalError("pending"));
  bool done = false;
  MultiScan(tc.router.get(), &tc.cluster, "", "", 3, RequestOptions{},
            [&](Result<std::vector<Record>> r) {
              limited = std::move(r);
              done = true;
            });
  tc.RunUntil(done);
  ASSERT_TRUE(limited.ok()) << limited.status();
  ASSERT_EQ(limited->size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ((*limited)[i].key, keys[i]);

  Result<std::vector<Record>> unlimited(InternalError("pending"));
  done = false;
  MultiScan(tc.router.get(), &tc.cluster, "", "", 0, RequestOptions{},
            [&](Result<std::vector<Record>> r) {
              unlimited = std::move(r);
              done = true;
            });
  tc.RunUntil(done);
  EXPECT_FALSE(unlimited.ok());
}

TEST(ParallelScanTest, FanOutIsConcurrentNotSequential) {
  TestCluster tc(3, 1);
  for (const std::string& key : {"ant", "gnu", "pig"}) {
    ASSERT_TRUE(tc.PutSync(key, "v").ok());
  }
  // Baseline: one single-partition scan's wall-clock.
  Time start = tc.loop.Now();
  bool done = false;
  tc.router->Scan("", "g", 0, RequestOptions{}, [&](Result<std::vector<Record>> r) {
    ASSERT_TRUE(r.ok());
    done = true;
  });
  tc.RunUntil(done);
  Duration single = tc.loop.Now() - start;
  ASSERT_GT(single, 0);

  // Three partitions fanned out concurrently: wall-clock must be well under
  // three sequential round trips.
  start = tc.loop.Now();
  done = false;
  MultiScan(tc.router.get(), &tc.cluster, "", "", 0, RequestOptions{},
            [&](Result<std::vector<Record>> r) {
              ASSERT_TRUE(r.ok());
              EXPECT_EQ(r->size(), 3u);
              done = true;
            });
  tc.RunUntil(done);
  Duration fanned = tc.loop.Now() - start;
  EXPECT_LT(fanned, 2 * single) << "3-partition scan should cost ~1 round trip, got "
                                << FormatDuration(fanned) << " vs single "
                                << FormatDuration(single);
}

// ------------------------------------------------------ WITH clause -------

TEST(WithClauseTest, ParsesStalenessAndDeadline) {
  auto ast = ParseQueryTemplate(
      "SELECT p.* FROM profiles p WHERE p.user_id = <u> WITH STALENESS 5s, DEADLINE 50ms");
  ASSERT_TRUE(ast.ok()) << ast.status();
  ASSERT_TRUE(ast->staleness_bound.has_value());
  EXPECT_EQ(*ast->staleness_bound, 5 * kSecond);
  ASSERT_TRUE(ast->deadline.has_value());
  EXPECT_EQ(*ast->deadline, 50 * kMillisecond);
}

TEST(WithClauseTest, UnitsAndOrderAreFlexible) {
  auto ast = ParseQueryTemplate(
      "SELECT p.* FROM profiles p WHERE p.user_id = <u> "
      "ORDER BY p.bday LIMIT 10 WITH DEADLINE 2m, STALENESS 500us");
  ASSERT_TRUE(ast.ok()) << ast.status();
  EXPECT_EQ(*ast->deadline, 2 * kMinute);
  EXPECT_EQ(*ast->staleness_bound, 500 * kMicrosecond);
}

TEST(WithClauseTest, RejectsMalformedBounds) {
  const char* base = "SELECT p.* FROM profiles p WHERE p.user_id = <u> ";
  EXPECT_FALSE(ParseQueryTemplate(std::string(base) + "WITH").ok());
  EXPECT_FALSE(ParseQueryTemplate(std::string(base) + "WITH BUDGET 5s").ok());
  EXPECT_FALSE(ParseQueryTemplate(std::string(base) + "WITH STALENESS 5").ok());
  EXPECT_FALSE(ParseQueryTemplate(std::string(base) + "WITH STALENESS 5fortnights").ok());
  EXPECT_FALSE(ParseQueryTemplate(std::string(base) + "WITH DEADLINE 0ms").ok());
  EXPECT_FALSE(
      ParseQueryTemplate(std::string(base) + "WITH STALENESS 1s, STALENESS 2s").ok());
}

// --------------------------------------------- whole-stack acceptance -----

EntityDef ProfilesEntity() {
  EntityDef profiles;
  profiles.name = "profiles";
  profiles.fields = {{"user_id", FieldType::kInt64},
                     {"name", FieldType::kString},
                     {"bday", FieldType::kInt64}};
  profiles.key_fields = {"user_id"};
  return profiles;
}

Row Profile(int64_t id, const char* name) {
  Row row;
  row.SetInt("user_id", id);
  row.SetString("name", name);
  row.SetInt("bday", 100);
  return row;
}

TEST(ScadsOptionsTest, RegisterQueryRejectsStalenessLooserThanSpec) {
  ScadsOptions options;
  options.consistency_spec = "staleness: 10s\n";
  auto created = Scads::Create(options);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Scads> db = std::move(created).value();
  ASSERT_TRUE(db->DefineEntity(ProfilesEntity()).ok());
  auto bounds = db->RegisterQuery(
      "loose", "SELECT p.* FROM profiles p WHERE p.user_id = <u> WITH STALENESS 30s");
  EXPECT_EQ(bounds.status().code(), StatusCode::kInvalidArgument) << bounds.status();
  // Tighter than the spec is exactly the point — accepted.
  EXPECT_TRUE(db->RegisterQuery(
                    "tight",
                    "SELECT p.* FROM profiles p WHERE p.user_id = <u> WITH STALENESS 1s")
                  .ok());
}

// The ISSUE's acceptance scenario: a query registered WITH STALENESS 1s,
// DEADLINE 20ms must (a) reject cache entries older than 1s that the
// deployment-wide 10s spec would have served, and (b) shed with
// kDeadlineExceeded — counted per template — when node latency exceeds its
// 20ms budget, while the identical unbounded query keeps succeeding.
TEST(ScadsOptionsTest, TemplateBoundsOverrideSpecAndShedOnDeadline) {
  ScadsOptions options;
  options.initial_nodes = 3;
  options.consistency_spec = "staleness: 10s\n";
  options.cache_config.enabled = true;
  auto created = Scads::Create(options);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Scads> db = std::move(created).value();
  ASSERT_TRUE(db->DefineEntity(ProfilesEntity()).ok());
  ASSERT_TRUE(db->RegisterQuery("prof_plain",
                                "SELECT p.* FROM profiles p WHERE p.user_id = <u>")
                  .ok());
  ASSERT_TRUE(db->RegisterQuery("prof_bounded",
                                "SELECT p.* FROM profiles p WHERE p.user_id = <u> "
                                "WITH STALENESS 1s, DEADLINE 20ms")
                  .ok());
  ASSERT_TRUE(db->Start().ok());
  ASSERT_TRUE(db->PutRowSync("profiles", Profile(7, "alice"), RequestOptions{}).ok());

  // Age the cached entry past the template bound but well inside the spec's.
  db->RunFor(2 * kSecond);

  int64_t hits_before = db->metrics()->CounterValue("cache.point.hits");
  int64_t stale_before = db->metrics()->CounterValue("cache.point.stale_rejects");
  ParamMap params = {{"u", Value(int64_t{7})}};

  // (a) Deployment-wide bound serves the 2s-old entry from cache...
  Result<std::vector<Row>> plain = db->QuerySync("prof_plain", params, RequestOptions{});
  ASSERT_TRUE(plain.ok()) << plain.status();
  ASSERT_EQ(plain->size(), 1u);
  EXPECT_EQ(db->metrics()->CounterValue("cache.point.hits"), hits_before + 1);

  // ...the 1s template rejects it and reads storage — same row, fresh path.
  Result<std::vector<Row>> bounded = db->QuerySync("prof_bounded", params, RequestOptions{});
  ASSERT_TRUE(bounded.ok()) << bounded.status();
  ASSERT_EQ(bounded->size(), 1u);
  EXPECT_EQ((*bounded)[0].GetString("name"), "alice");
  EXPECT_EQ(db->metrics()->CounterValue("cache.point.stale_rejects"), stale_before + 1);
  EXPECT_EQ(db->metrics()->CounterValue("cache.point.hits"), hits_before + 1);

  // The tight-bounded reject must NOT have purged the entry for lax
  // requests: the deployment-wide query still hits cache.
  Result<std::vector<Row>> plain_again = db->QuerySync("prof_plain", params, RequestOptions{});
  ASSERT_TRUE(plain_again.ok());
  EXPECT_EQ(db->metrics()->CounterValue("cache.point.hits"), hits_before + 2);

  // (b) Slow every node past the 20ms budget. The storage read the bounded
  // template needs (its fresh cache entry from the read above ages out
  // first) cannot finish in time: kDeadlineExceeded, accounted to the
  // template. The unbounded twin still succeeds.
  db->RunFor(1500 * kMillisecond);  // age the bounded template's entry > 1s
  for (NodeId id = 0; id < 3; ++id) {
    StorageNode* node = db->cluster()->GetNode(id);
    if (node != nullptr) node->InjectBackgroundLoad(100 * kMillisecond);
  }
  Result<std::vector<Row>> shed = db->QuerySync("prof_bounded", params, RequestOptions{});
  EXPECT_EQ(shed.status().code(), StatusCode::kDeadlineExceeded) << shed.status();

  Result<std::vector<Row>> still_ok = db->QuerySync("prof_plain", params, RequestOptions{});
  ASSERT_TRUE(still_ok.ok()) << still_ok.status();

  TemplateSlaAccountant::TemplateStats bounded_stats =
      db->template_sla()->stats("prof_bounded");
  EXPECT_EQ(bounded_stats.deadline, 20 * kMillisecond);
  EXPECT_EQ(bounded_stats.staleness, kSecond);
  EXPECT_EQ(bounded_stats.issued, 2);
  EXPECT_EQ(bounded_stats.ok, 1);
  EXPECT_EQ(bounded_stats.deadline_exceeded, 1);
  TemplateSlaAccountant::TemplateStats plain_stats = db->template_sla()->stats("prof_plain");
  EXPECT_EQ(plain_stats.issued, 3);
  EXPECT_EQ(plain_stats.ok, 3);
  EXPECT_EQ(plain_stats.deadline_exceeded, 0);
}

TEST(ScadsOptionsTest, PerRequestStalenessGovernsReplicaChoiceOnCacheMiss) {
  // No cache: the override must still steer the replica-watermark check —
  // a 1s-bounded read escalates to the primary where the 10s default would
  // have trusted a lagging secondary.
  ScadsOptions options;
  options.initial_nodes = 3;
  options.consistency_spec = "staleness: 10s\n";
  // Oracle liveness: this test freezes the secondaries' heartbeats to
  // manufacture watermark lag, and needs the lagging secondary to stay an
  // eligible read target — with the failure detector armed, 3s of silence
  // would mark it dead and steer the read before staleness ever decides.
  options.enable_failure_detection = false;
  auto created = Scads::Create(options);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Scads> db = std::move(created).value();
  ASSERT_TRUE(db->DefineEntity(ProfilesEntity()).ok());
  ASSERT_TRUE(db->Start().ok());

  Row row = Profile(9, "bob");
  ASSERT_TRUE(db->PutRowSync("profiles", row, RequestOptions{}).ok());
  db->RunFor(500 * kMillisecond);  // let the write finish replicating
  Row key;
  key.SetInt("user_id", 9);

  // Freeze the key's partition by isolating each of its secondaries (every
  // node in its own group, so they cannot heartbeat each other either),
  // then let simulated time pass so the watermark lag exceeds 1s but stays
  // under 10s. Heal right before reading: the watermark check is
  // synchronous at Get() time, ahead of the next heartbeat.
  Result<std::string> storage_key = EncodePrimaryKey(ProfilesEntity(), key);
  ASSERT_TRUE(storage_key.ok());
  const PartitionInfo& partition = db->cluster()->partitions()->ForKey(*storage_key);
  ASSERT_GE(partition.replicas.size(), 2u) << "test needs a secondary to lag";
  for (size_t i = 1; i < partition.replicas.size(); ++i) {
    db->network()->SetPartitionGroup(partition.replicas[i], 77 + static_cast<int>(i));
  }
  db->RunFor(3 * kSecond);
  db->network()->Heal();

  StalenessStats before = db->staleness()->stats();
  Result<Row> lax = db->GetRowSync("profiles", key, RequestOptions{});
  ASSERT_TRUE(lax.ok()) << lax.status();
  StalenessStats mid = db->staleness()->stats();
  EXPECT_EQ(mid.fresh_replica_reads, before.fresh_replica_reads + 1)
      << "3s-lagged secondary should satisfy the 10s spec bound";

  RequestOptions tight;
  tight.max_staleness = kSecond;
  Result<Row> fresh = db->GetRowSync("profiles", key, tight);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  StalenessStats after = db->staleness()->stats();
  EXPECT_EQ(after.primary_escalations, mid.primary_escalations + 1)
      << "1s override must reject the 3s-lagged secondary";
  EXPECT_EQ(after.fresh_replica_reads, mid.fresh_replica_reads);
}

TEST(SlaMonitorTest, ReportCarriesDeadlineExceededCount) {
  RouterWindow window;
  window.reads_ok = 10;
  window.reads_failed = 2;
  window.deadline_exceeded = 2;
  SlaMonitor monitor(PerformanceSla{});
  SlaReport report = monitor.Evaluate(window, /*now=*/kSecond);
  EXPECT_EQ(report.deadline_exceeded, 2);
}

}  // namespace
}  // namespace scads
