// Unit tests for src/storage: arena, skiplist, codec, WAL, engine.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "storage/arena.h"
#include "storage/codec.h"
#include "storage/engine.h"
#include "storage/skiplist.h"
#include "storage/wal.h"

namespace scads {
namespace {

Version V(Time ts, NodeId writer = 0) { return Version{ts, writer}; }

// ------------------------------------------------------------------ Arena --

TEST(ArenaTest, AllocationsAreDistinctAndWritable) {
  Arena arena;
  char* a = arena.Allocate(16);
  char* b = arena.Allocate(16);
  EXPECT_NE(a, b);
  std::fill(a, a + 16, 'x');
  std::fill(b, b + 16, 'y');
  EXPECT_EQ(a[15], 'x');
  EXPECT_EQ(b[0], 'y');
}

TEST(ArenaTest, LargeAllocationsWork) {
  Arena arena;
  char* big = arena.Allocate(1 << 20);
  big[0] = 1;
  big[(1 << 20) - 1] = 2;
  EXPECT_GE(arena.MemoryUsage(), static_cast<size_t>(1 << 20));
}

TEST(ArenaTest, AlignedAllocationsAreAligned) {
  Arena arena;
  arena.Allocate(3);  // Skew the bump pointer.
  char* p = arena.AllocateAligned(64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(void*), 0u);
}

TEST(ArenaTest, MemoryUsageGrows) {
  Arena arena;
  size_t before = arena.MemoryUsage();
  for (int i = 0; i < 100; ++i) arena.Allocate(100);
  EXPECT_GT(arena.MemoryUsage(), before);
}

// --------------------------------------------------------------- SkipList --

TEST(SkipListTest, InsertAndFind) {
  SkipList list(1);
  bool created = false;
  SkipList::Payload* p = list.FindOrCreate("alpha", &created);
  EXPECT_TRUE(created);
  list.AssignValue(p, "one");
  p->version = V(10);

  const SkipList::Payload* found = list.Find("alpha");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(std::string_view(found->value_data, found->value_size), "one");
  EXPECT_EQ(found->version, V(10));
  EXPECT_EQ(list.Find("beta"), nullptr);
}

TEST(SkipListTest, FindOrCreateIsIdempotentOnKey) {
  SkipList list(1);
  bool created = false;
  list.FindOrCreate("k", &created);
  EXPECT_TRUE(created);
  list.FindOrCreate("k", &created);
  EXPECT_FALSE(created);
  EXPECT_EQ(list.size(), 1u);
}

TEST(SkipListTest, IterationIsSorted) {
  SkipList list(7);
  Rng rng(3);
  std::vector<std::string> keys;
  for (int i = 0; i < 500; ++i) {
    keys.push_back("key" + std::to_string(rng.Uniform(100000)));
  }
  bool created;
  for (const auto& k : keys) list.FindOrCreate(k, &created);

  std::vector<std::string> seen;
  SkipList::Iterator it(&list);
  for (it.SeekToFirst(); it.Valid(); it.Next()) seen.emplace_back(it.key());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  EXPECT_EQ(seen, keys);
}

TEST(SkipListTest, SeekFindsFirstAtOrAfter) {
  SkipList list(1);
  bool created;
  for (const char* k : {"b", "d", "f"}) list.FindOrCreate(k, &created);
  SkipList::Iterator it(&list);
  it.Seek("c");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "d");
  it.Seek("d");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "d");
  it.Seek("g");
  EXPECT_FALSE(it.Valid());
}

TEST(SkipListTest, EmptyValueSupported) {
  SkipList list(1);
  bool created;
  SkipList::Payload* p = list.FindOrCreate("k", &created);
  list.AssignValue(p, "");
  const SkipList::Payload* found = list.Find("k");
  EXPECT_EQ(found->value_size, 0u);
}

TEST(SkipListTest, ManyKeysStressAgainstStdMap) {
  SkipList list(99);
  std::map<std::string, std::string> model;
  Rng rng(42);
  bool created;
  for (int i = 0; i < 5000; ++i) {
    std::string k = "u" + std::to_string(rng.Uniform(2000));
    std::string v = "v" + std::to_string(i);
    SkipList::Payload* p = list.FindOrCreate(k, &created);
    list.AssignValue(p, v);
    model[k] = v;
  }
  EXPECT_EQ(list.size(), model.size());
  for (const auto& [k, v] : model) {
    const SkipList::Payload* p = list.Find(k);
    ASSERT_NE(p, nullptr) << k;
    EXPECT_EQ(std::string_view(p->value_data, p->value_size), v);
  }
}

// ------------------------------------------------------------------ Codec --

TEST(CodecTest, FixedIntsRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeefu);
  PutFixed64(&buf, 0x0123456789abcdefULL);
  std::string_view in = buf;
  uint32_t v32 = 0;
  uint64_t v64 = 0;
  ASSERT_TRUE(GetFixed32(&in, &v32));
  ASSERT_TRUE(GetFixed64(&in, &v64));
  EXPECT_EQ(v32, 0xdeadbeefu);
  EXPECT_EQ(v64, 0x0123456789abcdefULL);
  EXPECT_TRUE(in.empty());
}

TEST(CodecTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'z'));
  std::string_view in = buf;
  std::string_view a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c.size(), 1000u);
}

TEST(CodecTest, TruncatedReadsFailCleanly) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  std::string_view in = std::string_view(buf).substr(0, 6);  // cut mid-payload
  std::string_view out;
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
  std::string_view tiny = "ab";
  uint32_t v = 0;
  EXPECT_FALSE(GetFixed32(&tiny, &v));
}

TEST(CodecTest, Crc32cKnownVector) {
  // Standard test vector: "123456789" -> 0xe3069283 under CRC-32C.
  EXPECT_EQ(Crc32c("123456789"), 0xe3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  EXPECT_NE(Crc32c("a"), Crc32c("b"));
}

// -------------------------------------------------------------------- WAL --

WalRecord MakePut(const std::string& k, const std::string& v, Time ts) {
  WalRecord r;
  r.type = WalRecord::Type::kPut;
  r.key = k;
  r.value = v;
  r.version = V(ts, 3);
  return r;
}

TEST(WalTest, PayloadRoundTrip) {
  WalRecord r = MakePut("user:1", "alice", 99);
  auto decoded = WalWriter::DecodePayload(WalWriter::EncodePayload(r));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, r);
}

TEST(WalTest, DeleteRoundTrip) {
  WalRecord r;
  r.type = WalRecord::Type::kDelete;
  r.key = "gone";
  r.version = V(5, 1);
  auto decoded = WalWriter::DecodePayload(WalWriter::EncodePayload(r));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, WalRecord::Type::kDelete);
  EXPECT_EQ(decoded->key, "gone");
}

TEST(WalTest, AppendAndReadBack) {
  MemoryWalSink sink;
  WalWriter writer(&sink);
  std::vector<WalRecord> in;
  for (int i = 0; i < 20; ++i) {
    in.push_back(MakePut("k" + std::to_string(i), "v" + std::to_string(i), 100 + i));
    ASSERT_TRUE(writer.Append(in.back()).ok());
  }
  auto out = ReadWal(sink.Contents());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, in);
}

TEST(WalTest, TornTailIsTolerated) {
  MemoryWalSink sink;
  WalWriter writer(&sink);
  ASSERT_TRUE(writer.Append(MakePut("a", "1", 1)).ok());
  ASSERT_TRUE(writer.Append(MakePut("b", "2", 2)).ok());
  std::string bytes = sink.Contents();
  bytes.resize(bytes.size() - 3);  // torn final frame
  auto out = ReadWal(bytes);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].key, "a");
}

TEST(WalTest, MidstreamCorruptionIsAnError) {
  MemoryWalSink sink;
  WalWriter writer(&sink);
  ASSERT_TRUE(writer.Append(MakePut("a", "1", 1)).ok());
  ASSERT_TRUE(writer.Append(MakePut("b", "2", 2)).ok());
  std::string bytes = sink.Contents();
  bytes[10] ^= 0x40;  // flip a bit in the first record's payload
  auto out = ReadWal(bytes);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInternal);
}

TEST(WalTest, FileSinkRoundTrip) {
  std::string path = testing::TempDir() + "/scads_wal_test.log";
  {
    auto sink = FileWalSink::Create(path);
    ASSERT_TRUE(sink.ok());
    WalWriter writer(sink->get());
    ASSERT_TRUE(writer.Append(MakePut("x", "y", 7)).ok());
    ASSERT_TRUE(writer.Sync().ok());
  }
  auto out = ReadWalFile(path);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].key, "x");
  std::remove(path.c_str());
}

TEST(WalTest, MemorySinkCountsSyncs) {
  MemoryWalSink sink;
  EXPECT_TRUE(sink.Sync().ok());
  EXPECT_TRUE(sink.Sync().ok());
  EXPECT_EQ(sink.sync_count(), 2);
}

// ----------------------------------------------------------------- Engine --

TEST(EngineTest, PutThenGet) {
  StorageEngine engine;
  ASSERT_TRUE(engine.Put("user:1", "alice", V(1)).ok());
  auto got = engine.Get("user:1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "alice");
  EXPECT_EQ(got->version, V(1));
  EXPECT_EQ(engine.live_count(), 1u);
}

TEST(EngineTest, GetMissingIsNotFound) {
  StorageEngine engine;
  EXPECT_EQ(engine.Get("nope").status().code(), StatusCode::kNotFound);
}

TEST(EngineTest, EmptyKeyRejected) {
  StorageEngine engine;
  EXPECT_EQ(engine.Put("", "v", V(1)).status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, NewerVersionWins) {
  StorageEngine engine;
  EXPECT_TRUE(*engine.Put("k", "old", V(1)));
  EXPECT_TRUE(*engine.Put("k", "new", V(2)));
  EXPECT_EQ(engine.Get("k")->value, "new");
}

TEST(EngineTest, OlderVersionSuperseded) {
  StorageEngine engine;
  EXPECT_TRUE(*engine.Put("k", "new", V(5)));
  EXPECT_FALSE(*engine.Put("k", "stale", V(3)));
  EXPECT_EQ(engine.Get("k")->value, "new");
  EXPECT_EQ(engine.metrics().CounterValue("puts_superseded"), 1);
}

TEST(EngineTest, EqualVersionIsIdempotentNoop) {
  StorageEngine engine;
  EXPECT_TRUE(*engine.Put("k", "v", V(5, 2)));
  EXPECT_FALSE(*engine.Put("k", "v", V(5, 2)));
  EXPECT_EQ(engine.live_count(), 1u);
}

TEST(EngineTest, WriterIdBreaksTimestampTies) {
  StorageEngine engine;
  EXPECT_TRUE(*engine.Put("k", "from1", V(5, 1)));
  EXPECT_TRUE(*engine.Put("k", "from2", V(5, 2)));   // higher writer id wins
  EXPECT_FALSE(*engine.Put("k", "from0", V(5, 0)));  // lower loses
  EXPECT_EQ(engine.Get("k")->value, "from2");
}

TEST(EngineTest, DeleteHidesKey) {
  StorageEngine engine;
  ASSERT_TRUE(engine.Put("k", "v", V(1)).ok());
  EXPECT_TRUE(*engine.Delete("k", V(2)));
  EXPECT_EQ(engine.Get("k").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.live_count(), 0u);
  EXPECT_EQ(engine.total_count(), 1u);  // tombstone remains
}

TEST(EngineTest, DeleteLosesToNewerPut) {
  StorageEngine engine;
  ASSERT_TRUE(engine.Put("k", "v2", V(10)).ok());
  EXPECT_FALSE(*engine.Delete("k", V(5)));  // stale delete
  EXPECT_EQ(engine.Get("k")->value, "v2");
}

TEST(EngineTest, PutAfterDeleteRevives) {
  StorageEngine engine;
  ASSERT_TRUE(engine.Put("k", "v1", V(1)).ok());
  ASSERT_TRUE(engine.Delete("k", V(2)).ok());
  EXPECT_TRUE(*engine.Put("k", "v3", V(3)));
  EXPECT_EQ(engine.Get("k")->value, "v3");
  EXPECT_EQ(engine.live_count(), 1u);
}

TEST(EngineTest, GetRawExposesTombstones) {
  StorageEngine engine;
  ASSERT_TRUE(engine.Put("k", "v", V(1)).ok());
  ASSERT_TRUE(engine.Delete("k", V(2)).ok());
  auto raw = engine.GetRaw("k");
  ASSERT_TRUE(raw.has_value());
  EXPECT_TRUE(raw->tombstone);
  EXPECT_EQ(raw->version, V(2));
  EXPECT_FALSE(engine.GetRaw("absent").has_value());
}

TEST(EngineTest, ScanRangeSortedAndBounded) {
  StorageEngine engine;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.Put("k" + std::to_string(i), std::to_string(i), V(i + 1)).ok());
  }
  auto rows = engine.Scan("k2", "k6", 0);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 4u);
  EXPECT_EQ((*rows)[0].key, "k2");
  EXPECT_EQ((*rows)[3].key, "k5");
}

TEST(EngineTest, ScanRespectsLimit) {
  StorageEngine engine;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.Put("k" + std::to_string(i), "v", V(i + 1)).ok());
  }
  auto rows = engine.Scan("", "", 3);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST(EngineTest, ScanSkipsTombstones) {
  StorageEngine engine;
  ASSERT_TRUE(engine.Put("a", "1", V(1)).ok());
  ASSERT_TRUE(engine.Put("b", "2", V(1)).ok());
  ASSERT_TRUE(engine.Delete("a", V(2)).ok());
  auto rows = engine.Scan("", "", 0);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].key, "b");
}

TEST(EngineTest, ScanStartAfterEndRejected) {
  StorageEngine engine;
  EXPECT_EQ(engine.Scan("z", "a", 0).status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, ScanUnboundedEnd) {
  StorageEngine engine;
  ASSERT_TRUE(engine.Put("a", "1", V(1)).ok());
  ASSERT_TRUE(engine.Put("z", "26", V(1)).ok());
  auto rows = engine.Scan("b", "", 0);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].key, "z");
}

TEST(EngineTest, WalLogsEveryMutation) {
  MemoryWalSink sink;
  EngineOptions options;
  options.wal = &sink;
  StorageEngine engine(options);
  ASSERT_TRUE(engine.Put("a", "1", V(1)).ok());
  ASSERT_TRUE(engine.Delete("a", V(2)).ok());
  auto records = ReadWal(sink.Contents());
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].type, WalRecord::Type::kPut);
  EXPECT_EQ((*records)[1].type, WalRecord::Type::kDelete);
}

TEST(EngineTest, RecoveryRebuildsExactState) {
  MemoryWalSink sink;
  EngineOptions options;
  options.wal = &sink;
  {
    StorageEngine engine(options);
    ASSERT_TRUE(engine.Put("a", "1", V(1)).ok());
    ASSERT_TRUE(engine.Put("b", "2", V(2)).ok());
    ASSERT_TRUE(engine.Delete("a", V(3)).ok());
    ASSERT_TRUE(engine.Put("b", "2b", V(4)).ok());
  }
  auto records = ReadWal(sink.Contents());
  ASSERT_TRUE(records.ok());
  auto recovered = StorageEngine::Recover(EngineOptions{}, *records);
  ASSERT_TRUE(recovered.ok());
  StorageEngine& engine = **recovered;
  EXPECT_EQ(engine.Get("a").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.Get("b")->value, "2b");
  EXPECT_EQ(engine.live_count(), 1u);
}

TEST(EngineTest, RecoveryIsIdempotentUnderDuplicateRecords) {
  MemoryWalSink sink;
  EngineOptions options;
  options.wal = &sink;
  {
    StorageEngine engine(options);
    ASSERT_TRUE(engine.Put("k", "v", V(9)).ok());
  }
  auto records = ReadWal(sink.Contents());
  ASSERT_TRUE(records.ok());
  std::vector<WalRecord> doubled = *records;
  doubled.insert(doubled.end(), records->begin(), records->end());
  auto recovered = StorageEngine::Recover(EngineOptions{}, doubled);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->Get("k")->value, "v");
  EXPECT_EQ((*recovered)->live_count(), 1u);
}

TEST(EngineTest, ScanLimitAtRangeBoundaries) {
  StorageEngine engine;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.Put("k" + std::to_string(i), std::to_string(i), V(i + 1)).ok());
  }
  // Limit exactly equal to the rows in range behaves like unlimited.
  auto exact = engine.Scan("k2", "k6", 4);
  ASSERT_TRUE(exact.ok());
  ASSERT_EQ(exact->size(), 4u);
  EXPECT_EQ((*exact)[0].key, "k2");
  EXPECT_EQ((*exact)[3].key, "k5");
  // Limit larger than the range must not read past the end bound.
  auto over = engine.Scan("k2", "k6", 100);
  ASSERT_TRUE(over.ok());
  EXPECT_EQ(over->size(), 4u);
  // Limit smaller than the range stops early, in order.
  auto under = engine.Scan("k2", "k6", 3);
  ASSERT_TRUE(under.ok());
  ASSERT_EQ(under->size(), 3u);
  EXPECT_EQ((*under)[2].key, "k4");
  // Start exactly at an existing key with limit 1 returns that key.
  auto head = engine.Scan("k7", "", 1);
  ASSERT_TRUE(head.ok());
  ASSERT_EQ(head->size(), 1u);
  EXPECT_EQ((*head)[0].key, "k7");
}

TEST(EngineTest, ScanLimitCountsOnlyLiveRows) {
  StorageEngine engine;
  ASSERT_TRUE(engine.Put("a", "1", V(1)).ok());
  ASSERT_TRUE(engine.Put("b", "2", V(1)).ok());
  ASSERT_TRUE(engine.Put("c", "3", V(1)).ok());
  ASSERT_TRUE(engine.Delete("b", V(2)).ok());
  // The tombstone must not consume a limit slot: limit 2 still reaches "c".
  auto rows = engine.Scan("", "", 2);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].key, "a");
  EXPECT_EQ((*rows)[1].key, "c");
}

TEST(EngineTest, PurgeTombstonesKeepsLiveAndTotalCounts) {
  StorageEngine engine;
  ASSERT_TRUE(engine.Put("a", "1", V(10)).ok());
  ASSERT_TRUE(engine.Put("b", "2", V(10)).ok());
  ASSERT_TRUE(engine.Delete("a", V(20)).ok());
  EXPECT_EQ(engine.live_count(), 1u);
  EXPECT_EQ(engine.total_count(), 2u);
  // Purging drops the version floor but the ghost stays in the skiplist
  // until memtable rotation: counts must not change.
  EXPECT_EQ(engine.PurgeTombstonesBefore(100), 1u);
  EXPECT_EQ(engine.live_count(), 1u);
  EXPECT_EQ(engine.total_count(), 2u);
  // A purge is idempotent: the ghost must not be recounted.
  EXPECT_EQ(engine.PurgeTombstonesBefore(100), 0u);
  // Reviving the key restores live accounting without growing the table.
  EXPECT_TRUE(*engine.Put("a", "back", V(5)));
  EXPECT_EQ(engine.live_count(), 2u);
  EXPECT_EQ(engine.total_count(), 2u);
}

TEST(EngineTest, PurgeTombstonesResetsVersionFloor) {
  StorageEngine engine;
  ASSERT_TRUE(engine.Put("k", "v", V(100)).ok());
  ASSERT_TRUE(engine.Delete("k", V(200)).ok());
  EXPECT_EQ(engine.PurgeTombstonesBefore(150), 0u);  // too new
  EXPECT_EQ(engine.PurgeTombstonesBefore(300), 1u);
  // After purge, even an "old" write may land again (documented hazard).
  EXPECT_TRUE(*engine.Put("k", "back", V(50)));
  EXPECT_EQ(engine.Get("k")->value, "back");
}

TEST(EngineTest, MetricsCountOperations) {
  StorageEngine engine;
  ASSERT_TRUE(engine.Put("k", "v", V(1)).ok());
  (void)engine.Get("k");
  (void)engine.Get("missing");
  (void)engine.Scan("", "", 0);
  EXPECT_EQ(engine.metrics().CounterValue("puts"), 1);
  EXPECT_EQ(engine.metrics().CounterValue("gets"), 2);
  EXPECT_EQ(engine.metrics().CounterValue("get_misses"), 1);
  EXPECT_EQ(engine.metrics().CounterValue("scans"), 1);
}

TEST(EngineTest, LargeValueRoundTrip) {
  StorageEngine engine;
  std::string big(1 << 18, 'q');
  ASSERT_TRUE(engine.Put("big", big, V(1)).ok());
  EXPECT_EQ(engine.Get("big")->value, big);
}

// Property sweep: engine state must match a model map under random
// interleavings of put/delete with random versions, for several seeds.
class EngineModelTest : public testing::TestWithParam<uint64_t> {};

TEST_P(EngineModelTest, MatchesModelUnderRandomOps) {
  StorageEngine engine;
  struct ModelEntry {
    std::string value;
    Version version;
    bool tombstone;
  };
  std::map<std::string, ModelEntry> model;
  Rng rng(GetParam());
  for (int i = 0; i < 4000; ++i) {
    std::string key = "k" + std::to_string(rng.Uniform(200));
    Version version = V(static_cast<Time>(rng.Uniform(1000)), static_cast<NodeId>(rng.Uniform(4)));
    bool is_delete = rng.Bernoulli(0.25);
    auto it = model.find(key);
    bool newer = it == model.end() || version > it->second.version;
    if (is_delete) {
      bool applied = *engine.Delete(key, version);
      EXPECT_EQ(applied, newer);
      if (newer) model[key] = ModelEntry{"", version, true};
    } else {
      std::string value = "v" + std::to_string(i);
      bool applied = *engine.Put(key, value, version);
      EXPECT_EQ(applied, newer);
      if (newer) model[key] = ModelEntry{value, version, false};
    }
  }
  // Full comparison via scan.
  auto rows = engine.Scan("", "", 0);
  ASSERT_TRUE(rows.ok());
  std::map<std::string, std::string> live_model;
  for (const auto& [k, e] : model) {
    if (!e.tombstone) live_model[k] = e.value;
  }
  ASSERT_EQ(rows->size(), live_model.size());
  for (const auto& row : *rows) {
    ASSERT_TRUE(live_model.count(row.key)) << row.key;
    EXPECT_EQ(live_model[row.key], row.value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineModelTest, testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace scads
