// Chaos scenario suite (ISSUE 7 tentpole e): the self-healing loop under a
// seed x scenario matrix — crash+restart, permanent node loss, network
// partition + heal, gray/slow node — plus unit coverage for the failure
// detector, the one-path liveness consolidation, the router's circuit
// breaker, and write-side coalescing.
//
// The invariant every scenario asserts: ZERO acked-write loss. The harness
// writes monotonically increasing values round-robin over a fixed key set
// and records the highest value each key ever acked; after the fault heals
// (or repair completes), a primary-pinned read of every key must return a
// value at least that high. Availability may dip during the fault — that is
// the paper's availability-vs-staleness trade — but an acknowledged write
// regressing is a durability bug, never acceptable.

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/circuit_breaker.h"
#include "cluster/coalescer.h"
#include "common/strings.h"
#include "core/scads.h"
#include "gtest/gtest.h"
#include "sim/failure.h"

namespace scads {
namespace {

constexpr int kKeySlots = 16;
constexpr uint64_t kSeeds[] = {3, 11, 42};

ScadsOptions BaseOptions(uint64_t seed) {
  ScadsOptions options;
  options.seed = seed;
  options.initial_nodes = 5;
  options.partitions = 8;
  // rf=3 with quorum acks: an acked write provably exists on >= 2 nodes, so
  // losing any single node cannot lose it.
  options.consistency_spec = "durability: 99.999%\nstaleness: 10s\n";
  return options;
}

// Drives a raw-KV workload against the router and keeps the acked-write
// ledger the loss check verifies against.
struct ChaosHarness {
  std::unique_ptr<Scads> db;
  std::map<std::string, int64_t> acked;  // key -> highest acked value id
  int64_t next_value = 0;
  int64_t puts_acked = 0;

  explicit ChaosHarness(ScadsOptions options) {
    auto created = Scads::Create(std::move(options));
    EXPECT_TRUE(created.ok()) << created.status();
    db = std::move(created).value();
    EXPECT_TRUE(db->Start().ok());
  }

  static std::string KeyOf(int slot) { return StrFormat("chaos/%02d", slot); }

  // `count` sequential puts round-robin over the key slots, pumping `gap`
  // of simulated time after each. Failed puts are expected during faults
  // (a primary may be unreachable); only acked puts join the ledger.
  void WriteSome(int count, Duration gap = 100 * kMillisecond) {
    for (int i = 0; i < count; ++i) {
      int64_t value_id = next_value++;
      std::string key = KeyOf(static_cast<int>(value_id % kKeySlots));
      db->router()->Put(key, "v" + std::to_string(value_id), db->durability_plan().ack_mode, RequestOptions{},
                        [this, key, value_id](Status status) {
                          if (!status.ok()) return;
                          ++puts_acked;
                          int64_t& high = acked[key];
                          high = std::max(high, value_id);
                        });
      db->RunFor(gap);
    }
  }

  Result<Record> Read(const std::string& key, bool pin_primary = false) {
    Result<Record> out(InternalError("callback never ran"));
    bool done = false;
    RequestOptions options;
    if (pin_primary) options.read_mode = ReadMode::kPrimaryOnly;
    db->router()->Get(key, options, [&](Result<Record> r) {
      out = std::move(r);
      done = true;
    });
    for (int i = 0; i < 100000 && !done; ++i) db->RunFor(kMillisecond);
    EXPECT_TRUE(done);
    return out;
  }

  // Availability probe: how many key slots answer a default-mode read now.
  int ReadableSlots() {
    int ok = 0;
    for (int slot = 0; slot < kKeySlots; ++slot) {
      if (Read(KeyOf(slot)).ok()) ++ok;
    }
    return ok;
  }

  void VerifyNoAckedLoss() {
    ASSERT_FALSE(acked.empty()) << "scenario acked nothing; the check is vacuous";
    for (const auto& [key, high] : acked) {
      Result<Record> got = Read(key, /*pin_primary=*/true);
      ASSERT_TRUE(got.ok()) << "acked write lost entirely: " << key << ": " << got.status();
      int64_t seen = std::stoll(got->value.substr(1));
      EXPECT_GE(seen, high) << key << " regressed below its last acked write";
    }
  }
};

// ------------------------------------------------------ scenario matrix --

TEST(ChaosSuiteTest, CrashRestartCatchesUpByDeltaSync) {
  for (uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ChaosHarness chaos(BaseOptions(seed));
    chaos.WriteSome(32);
    chaos.db->RunFor(2 * kSecond);  // replication settles

    // Crash the primary of slot 0's partition; keep writing while it is
    // down (writes to its partitions fail unacked, the rest proceed).
    NodeId victim =
        chaos.db->cluster()->partitions()->ForKey(ChaosHarness::KeyOf(0)).primary();
    chaos.db->failures()->TakeDown(victim);
    chaos.WriteSome(32);
    chaos.db->RunFor(5 * kSecond);
    chaos.db->failures()->BringUp(victim);
    chaos.db->RunFor(15 * kSecond);  // delta-sync + stream catch-up

    StorageNode* node = chaos.db->cluster()->GetNode(victim);
    ASSERT_NE(node, nullptr);
    EXPECT_GE(node->stats().delta_syncs_completed, 1)
        << "restart did not trigger crash-recovery catch-up";
    EXPECT_TRUE(chaos.db->cluster()->IsAlive(victim));
    chaos.VerifyNoAckedLoss();
  }
}

TEST(ChaosSuiteTest, PermanentNodeLossIsRepairedWithinWindow) {
  for (uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ScadsOptions options = BaseOptions(seed);
    options.enable_director = true;
    // The durability model plans around a 60s restore window; the Director
    // declares a replica lost after a quarter of it and must finish the
    // copy inside the remainder.
    options.failure_model.re_replication_time = kMinute;
    options.director_config.control_interval = 2 * kSecond;
    options.director_config.repair_after_fraction = 0.25;
    // Freeze autoscaling so the only fleet change is the repair itself.
    options.director_config.min_nodes = 5;
    options.director_config.scale_down_patience = 1 << 20;
    ChaosHarness chaos(options);
    chaos.WriteSome(32);
    chaos.db->RunFor(2 * kSecond);

    NodeId victim =
        chaos.db->cluster()->partitions()->ForKey(ChaosHarness::KeyOf(0)).primary();
    Time failed_at = chaos.db->loop()->Now();
    chaos.db->failures()->TakeDown(victim);  // never brought back
    chaos.WriteSome(64);                     // ~6.4s of writes during the loss
    // Run out the rest of the re-replication window.
    while (chaos.db->loop()->Now() - failed_at < kMinute) {
      chaos.db->RunFor(kSecond);
    }

    // Full replication restored: the lost node is out of every replica set
    // and every remaining replica is live.
    int rf = chaos.db->durability_plan().replication_factor;
    for (const PartitionInfo& partition : chaos.db->cluster()->partitions()->partitions()) {
      EXPECT_EQ(std::count(partition.replicas.begin(), partition.replicas.end(), victim), 0)
          << "partition " << partition.id << " still lists the lost node";
      EXPECT_EQ(static_cast<int>(partition.replicas.size()), rf);
      for (NodeId replica : partition.replicas) {
        EXPECT_TRUE(chaos.db->cluster()->IsAlive(replica));
      }
    }
    Director* director = chaos.db->director();
    ASSERT_NE(director, nullptr);
    EXPECT_GE(director->repairs_completed(), 1);
    // Measured restore time validates the PlanDurability assumption.
    EXPECT_GT(director->last_restore_time(), 0);
    EXPECT_LE(director->last_restore_time(), kMinute)
        << "repair missed the re_replication_time the durability plan assumed";
    ASSERT_FALSE(director->history().empty());
    const DirectorSnapshot& last = director->history().back();
    EXPECT_EQ(last.under_replicated_partitions, 0);
    EXPECT_EQ(last.repairs_completed, director->repairs_completed());
    chaos.VerifyNoAckedLoss();
  }
}

TEST(ChaosSuiteTest, NetworkPartitionHealsWithoutAckedLoss) {
  for (uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ChaosHarness chaos(BaseOptions(seed));
    chaos.WriteSome(32);
    chaos.db->RunFor(2 * kSecond);

    // Cut {3,4} off for 10s, starting mid-replication so in-flight batches
    // are lost on the wire; the majority side keeps the client, the router,
    // and the control-plane heartbeat sink.
    chaos.db->failures()->SchedulePartition({0, 1, 2}, {3, 4},
                                            chaos.db->loop()->Now() + 500 * kMillisecond,
                                            10 * kSecond);
    chaos.WriteSome(64);  // spans the partition forming and healing
    chaos.db->RunFor(15 * kSecond);

    EXPECT_EQ(chaos.db->failures()->partitions_injected(), 1);
    // Healed: nobody stays suspected once heartbeats resume.
    for (NodeId id : {0, 1, 2, 3, 4}) {
      EXPECT_TRUE(chaos.db->cluster()->IsAlive(id)) << "node " << id;
    }
    chaos.VerifyNoAckedLoss();
  }
}

TEST(ChaosSuiteTest, GrayNodeDegradesWithoutAckedLoss) {
  for (uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ChaosHarness chaos(BaseOptions(seed));
    chaos.WriteSome(32);
    chaos.db->RunFor(2 * kSecond);

    // Fail-slow, not fail-stop: 20x delivery latency and 30% loss on one
    // node for 10s. Oracle liveness never flips — only measured suspicion
    // and the circuit breaker can route around this.
    NodeId victim =
        chaos.db->cluster()->partitions()->ForKey(ChaosHarness::KeyOf(0)).primary();
    chaos.db->failures()->ScheduleGrayNode(victim, chaos.db->loop()->Now() + 500 * kMillisecond,
                                           10 * kSecond, 20.0, 0.3);
    chaos.WriteSome(64);
    int readable_during = chaos.ReadableSlots();
    EXPECT_GT(readable_during, 0) << "gray node took the whole keyspace down";
    chaos.db->RunFor(15 * kSecond);  // gray window ends, heartbeats recover

    EXPECT_EQ(chaos.db->failures()->gray_failures_injected(), 1);
    EXPECT_TRUE(chaos.db->cluster()->IsAlive(victim));
    chaos.VerifyNoAckedLoss();
  }
}

// ------------------------------------------------- detection & liveness --

TEST(ChaosDetectionTest, SilentNodeIsSuspectedWithoutOracle) {
  ChaosHarness chaos(BaseOptions(7));
  chaos.WriteSome(16);
  chaos.db->RunFor(3 * kSecond);  // heartbeat history accumulates

  // Isolate a node at the network layer ONLY: no oracle SetNodeAlive, no
  // injector callback. Detection must take liveness away by itself.
  constexpr NodeId kVictim = 2;
  chaos.db->network()->SetPartitionGroup(kVictim, 99);
  chaos.db->RunFor(10 * kSecond);
  EXPECT_TRUE(chaos.db->cluster()->Suspected(kVictim))
      << "silent node never crossed the suspicion threshold";
  EXPECT_FALSE(chaos.db->cluster()->IsAlive(kVictim));
  // The administrative flag was never touched — this is measured death.
  StorageNode* node = chaos.db->cluster()->GetNode(kVictim);
  ASSERT_NE(node, nullptr);
  EXPECT_TRUE(node->alive());

  // Reconnect: the next heartbeats clear the suspicion.
  chaos.db->network()->SetPartitionGroup(kVictim, 0);
  chaos.db->RunFor(5 * kSecond);
  EXPECT_FALSE(chaos.db->cluster()->Suspected(kVictim));
  EXPECT_TRUE(chaos.db->cluster()->IsAlive(kVictim));
}

TEST(ChaosLivenessTest, DownPathKeepsAllViewsConsistent) {
  // Regression for the split-brain bookkeeping: node->alive(),
  // ClusterState liveness, and network reachability used to be three
  // independently-toggled states. TakeDown/BringUp + SetNodeAlive is now
  // the one path, so all three views must flip together.
  ChaosHarness chaos(BaseOptions(5));
  constexpr NodeId kVictim = 1;
  StorageNode* node = chaos.db->cluster()->GetNode(kVictim);
  ASSERT_NE(node, nullptr);

  chaos.db->failures()->TakeDown(kVictim);
  EXPECT_FALSE(chaos.db->cluster()->IsAlive(kVictim));
  EXPECT_FALSE(node->alive());
  EXPECT_FALSE(chaos.db->network()->Connected(kVictim, 0));
  std::vector<NodeId> alive = chaos.db->cluster()->AliveNodes();
  EXPECT_EQ(std::count(alive.begin(), alive.end(), kVictim), 0)
      << "downed node still offered to selection";

  chaos.db->failures()->BringUp(kVictim);
  EXPECT_TRUE(chaos.db->cluster()->IsAlive(kVictim));
  EXPECT_TRUE(node->alive());
  EXPECT_TRUE(chaos.db->network()->Connected(kVictim, 0));
  alive = chaos.db->cluster()->AliveNodes();
  EXPECT_EQ(std::count(alive.begin(), alive.end(), kVictim), 1);
}

// ------------------------------------------------------- circuit breaker --

TEST(CircuitBreakerTest, OpensAfterFailuresAndProbesHalfOpen) {
  EventLoop loop;
  ClusterState cluster;
  ASSERT_TRUE(cluster.AddNode(1, nullptr).ok());
  CircuitBreakerConfig config;
  config.failure_threshold = 2;
  config.open_backoff = 200 * kMillisecond;
  config.jitter = 0;  // deterministic backoff for the assertions below
  CircuitBreaker breaker(&cluster, loop.clock(), config, /*seed=*/1);

  EXPECT_EQ(breaker.StateOf(1), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.TryAcquire(1));
  breaker.RecordFailure(1);
  EXPECT_EQ(breaker.StateOf(1), CircuitBreaker::State::kClosed);  // 1 < threshold
  breaker.RecordFailure(1);
  EXPECT_EQ(breaker.StateOf(1), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Healthy(1));
  EXPECT_FALSE(breaker.TryAcquire(1)) << "open breaker admitted a request";

  // Backoff elapses: exactly one half-open probe is admitted.
  loop.RunFor(250 * kMillisecond);
  EXPECT_TRUE(breaker.TryAcquire(1));
  EXPECT_EQ(breaker.StateOf(1), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.TryAcquire(1)) << "half-open admitted a second probe";

  // Probe fails: reopen, with doubled backoff.
  breaker.RecordFailure(1);
  EXPECT_EQ(breaker.StateOf(1), CircuitBreaker::State::kOpen);
  loop.RunFor(250 * kMillisecond);
  EXPECT_FALSE(breaker.TryAcquire(1)) << "reopen did not double the backoff";
  loop.RunFor(250 * kMillisecond);
  ASSERT_TRUE(breaker.TryAcquire(1));

  // Probe succeeds: closed, traffic flows again.
  breaker.RecordSuccess(1);
  EXPECT_EQ(breaker.StateOf(1), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.TryAcquire(1));
  EXPECT_GE(breaker.stats().opens, 1);
  EXPECT_GE(breaker.stats().reopens, 1);
  EXPECT_GE(breaker.stats().closes, 1);
}

TEST(CircuitBreakerTest, SuspicionTripsWithoutTimeouts) {
  EventLoop loop;
  ClusterState cluster;
  ASSERT_TRUE(cluster.AddNode(1, nullptr).ok());
  cluster.EnableFailureDetection(loop.clock());
  CircuitBreaker breaker(&cluster, loop.clock(), CircuitBreakerConfig{}, /*seed=*/1);

  // Heartbeats establish a cadence, then stop.
  for (int i = 0; i < 5; ++i) {
    loop.RunFor(500 * kMillisecond);
    cluster.RecordHeartbeat(1, loop.Now());
  }
  EXPECT_TRUE(breaker.Healthy(1));
  loop.RunFor(10 * kSecond);  // silence
  EXPECT_FALSE(breaker.Healthy(1)) << "suspicion did not trip the breaker";
  EXPECT_GE(breaker.stats().suspicion_opens, 1);
}

// ------------------------------------------------------ write coalescing --

TEST(WriteCoalescerTest, SameKeyPutsCollapseToOneReplicatedWrite) {
  ScadsOptions options = BaseOptions(9);
  options.write_coalescer_config.enabled = true;
  options.write_coalescer_config.window = 5 * kMillisecond;
  ChaosHarness chaos(options);

  // Three same-key puts inside one hold window: one replicated write, the
  // last-write-wins winner acked to all three callers.
  std::vector<Status> results;
  for (int i = 0; i < 3; ++i) {
    chaos.db->router()->Put("burst/key", "v" + std::to_string(i), AckMode::kPrimary, RequestOptions{},
                            [&results](Status status) { results.push_back(status); });
  }
  chaos.db->RunFor(kSecond);
  ASSERT_EQ(results.size(), 3u);
  for (const Status& status : results) EXPECT_TRUE(status.ok());

  WriteCoalescer* coalescer = chaos.db->write_coalescer();
  ASSERT_NE(coalescer, nullptr);
  EXPECT_EQ(coalescer->stats().leader_writes, 1);
  EXPECT_EQ(coalescer->stats().merged_writes, 2);
  EXPECT_EQ(coalescer->stats().batches_sent, 1);

  Result<Record> got = chaos.Read("burst/key", /*pin_primary=*/true);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "v2") << "coalescing must keep the last write, not the first";
}

}  // namespace
}  // namespace scads
