// Tests for src/index: update queue ordering, key codecs, and end-to-end
// index maintenance + execution of the paper's example queries on a live
// simulated cluster.

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/node.h"
#include "cluster/router.h"
#include "gtest/gtest.h"
#include "index/executor.h"
#include "index/keys.h"
#include "index/maintenance.h"
#include "index/scan.h"
#include "index/update_queue.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "query/planner.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace scads {
namespace {

// ------------------------------------------------------------ UpdateQueue --

TEST(UpdateQueueTest, DeadlineOrderRunsUrgentFirst) {
  EventLoop loop;
  UpdateQueue queue(&loop, QueuePolicy::kDeadline);
  queue.SetPaused(true);
  std::vector<int> order;
  queue.Enqueue(3000, "late", [&](std::function<void(Status)> done) {
    order.push_back(3);
    done(Status::Ok());
  });
  queue.Enqueue(1000, "urgent", [&](std::function<void(Status)> done) {
    order.push_back(1);
    done(Status::Ok());
  });
  queue.Enqueue(2000, "mid", [&](std::function<void(Status)> done) {
    order.push_back(2);
    done(Status::Ok());
  });
  queue.SetPaused(false);
  loop.RunFor(kSecond);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.processed(), 3);
}

TEST(UpdateQueueTest, FifoIgnoresDeadlines) {
  EventLoop loop;
  UpdateQueue queue(&loop, QueuePolicy::kFifo);
  queue.SetPaused(true);
  std::vector<int> order;
  queue.Enqueue(3000, "first-in", [&](std::function<void(Status)> done) {
    order.push_back(1);
    done(Status::Ok());
  });
  queue.Enqueue(1000, "second-in", [&](std::function<void(Status)> done) {
    order.push_back(2);
    done(Status::Ok());
  });
  queue.SetPaused(false);
  loop.RunFor(kSecond);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(UpdateQueueTest, TasksRunStrictlySequentially) {
  EventLoop loop;
  UpdateQueue queue(&loop);
  bool first_running = false;
  bool overlap = false;
  queue.Enqueue(100, "slow", [&](std::function<void(Status)> done) {
    first_running = true;
    loop.ScheduleAfter(10 * kMillisecond, [&, done] {
      first_running = false;
      done(Status::Ok());
    });
  });
  queue.Enqueue(200, "second", [&](std::function<void(Status)> done) {
    overlap = first_running;
    done(Status::Ok());
  });
  loop.RunFor(kSecond);
  EXPECT_FALSE(overlap);
  EXPECT_EQ(queue.processed(), 2);
}

TEST(UpdateQueueTest, DeadlineMissesCounted) {
  EventLoop loop;
  UpdateQueue queue(&loop);
  queue.SetPaused(true);
  queue.Enqueue(loop.Now() + 10, "tight", [&](std::function<void(Status)> done) {
    done(Status::Ok());
  });
  loop.RunFor(kSecond);  // deadline passes while paused
  queue.SetPaused(false);
  loop.RunFor(kSecond);
  EXPECT_EQ(queue.deadline_misses(), 1);
  EXPECT_GT(queue.lag_histogram().max(), 900 * kMillisecond);
}

TEST(UpdateQueueTest, EarliestDeadlineTracksHead) {
  EventLoop loop;
  UpdateQueue queue(&loop);
  queue.SetPaused(true);
  queue.Enqueue(500, "a", [](std::function<void(Status)> done) { done(Status::Ok()); });
  queue.Enqueue(100, "b", [](std::function<void(Status)> done) { done(Status::Ok()); });
  EXPECT_EQ(queue.earliest_deadline(), 100);
  EXPECT_EQ(queue.depth(), 2u);
  queue.SetPaused(false);
  loop.RunFor(kSecond);
  EXPECT_TRUE(queue.idle());
}

TEST(UpdateQueueTest, FailuresCounted) {
  EventLoop loop;
  UpdateQueue queue(&loop);
  queue.Enqueue(100, "boom", [](std::function<void(Status)> done) {
    done(InternalError("synthetic"));
  });
  loop.RunFor(kSecond);
  EXPECT_EQ(queue.failures(), 1);
}

// -------------------------------------------------------- Full mini-SCADS --

constexpr NodeId kClient = 1000;

Catalog SocialCatalog() {
  Catalog catalog;
  EntityDef profiles;
  profiles.name = "profiles";
  profiles.fields = {{"user_id", FieldType::kInt64},
                     {"name", FieldType::kString},
                     {"bday", FieldType::kInt64}};
  profiles.key_fields = {"user_id"};
  EXPECT_TRUE(catalog.AddEntity(profiles).ok());
  EntityDef friendships;
  friendships.name = "friendships";
  friendships.fields = {{"f1", FieldType::kInt64}, {"f2", FieldType::kInt64}};
  friendships.key_fields = {"f1", "f2"};
  friendships.fanout_caps["f1"] = 100;
  friendships.fanout_caps["f2"] = 100;
  EXPECT_TRUE(catalog.AddEntity(friendships).ok());
  EntityDef listings;
  listings.name = "listings";
  listings.fields = {{"listing_id", FieldType::kInt64},
                     {"city", FieldType::kString},
                     {"created", FieldType::kInt64}};
  listings.key_fields = {"listing_id"};
  EXPECT_TRUE(catalog.AddEntity(listings).ok());
  return catalog;
}

struct MiniScads {
  EventLoop loop;
  SimNetwork network;
  ClusterState cluster;
  std::vector<std::unique_ptr<StorageNode>> nodes;
  std::unique_ptr<Router> router;
  Catalog catalog;
  UpdateQueue queue;
  std::unique_ptr<IndexMaintainer> maintainer;
  std::unique_ptr<QueryExecutor> executor;
  std::map<std::string, QueryPlan> queries;

  MiniScads() : network(&loop, 3), catalog(SocialCatalog()), queue(&loop) {
    std::vector<NodeId> ids;
    for (int i = 0; i < 3; ++i) {
      auto node = std::make_unique<StorageNode>(i, &loop, &network, &cluster, NodeConfig{},
                                                77 + static_cast<uint64_t>(i));
      EXPECT_TRUE(cluster.AddNode(i, node.get()).ok());
      node->Start();
      nodes.push_back(std::move(node));
      ids.push_back(i);
    }
    auto map = PartitionMap::Create({}, ids, 2);
    EXPECT_TRUE(map.ok());
    cluster.set_partitions(std::move(map).value());
    router = std::make_unique<Router>(kClient, &loop, &network, &cluster, RouterConfig{}, 9);
    maintainer =
        std::make_unique<IndexMaintainer>(&loop, router.get(), &cluster, &catalog, &queue);
    executor = std::make_unique<QueryExecutor>(router.get(), &cluster, &catalog);
  }

  void RegisterQuery(const std::string& name, const std::string& text,
                     Duration staleness = 10 * kSecond) {
    auto ast = ParseQueryTemplate(text);
    ASSERT_TRUE(ast.ok()) << ast.status();
    auto bounds = AnalyzeTemplate(catalog, *ast);
    ASSERT_TRUE(bounds.ok()) << bounds.status();
    auto plan = PlanQuery(catalog, name, *ast, *bounds);
    ASSERT_TRUE(plan.ok()) << plan.status();
    for (const IndexPlan& index_plan : plan->plans) {
      ASSERT_TRUE(maintainer->RegisterPlan(index_plan, staleness).ok());
    }
    queries.emplace(name, std::move(plan).value());
  }

  // Upsert a base row: read old image, write new, trigger maintenance.
  void PutRow(const std::string& entity_name, const Row& row) {
    const EntityDef* entity = catalog.Get(entity_name);
    ASSERT_NE(entity, nullptr);
    auto key = EncodePrimaryKey(*entity, row);
    ASSERT_TRUE(key.ok());
    bool done = false;
    RequestOptions pinned;
    pinned.read_mode = ReadMode::kPrimaryOnly;
    router->Get(*key, pinned, [&](Result<Record> old_record) {
      std::optional<Row> old_row;
      if (old_record.ok()) {
        auto decoded = DecodeRow(*entity, old_record->value);
        if (decoded.ok()) old_row = *decoded;
      }
      router->Put(*key, EncodeRow(*entity, row), AckMode::kPrimary, RequestOptions{},
                  [&, old_row](Status status) {
                    ASSERT_TRUE(status.ok());
                    maintainer->OnBaseWrite(entity->name, old_row, row);
                    done = true;
                  });
    });
    loop.RunFor(kSecond);
    ASSERT_TRUE(done);
  }

  void DeleteRow(const std::string& entity_name, const Row& row) {
    const EntityDef* entity = catalog.Get(entity_name);
    ASSERT_NE(entity, nullptr);
    auto key = EncodePrimaryKey(*entity, row);
    ASSERT_TRUE(key.ok());
    bool done = false;
    RequestOptions pinned;
    pinned.read_mode = ReadMode::kPrimaryOnly;
    router->Get(*key, pinned, [&](Result<Record> old_record) {
      std::optional<Row> old_row;
      if (old_record.ok()) {
        auto decoded = DecodeRow(*entity, old_record->value);
        if (decoded.ok()) old_row = *decoded;
      }
      router->Delete(*key, AckMode::kPrimary, RequestOptions{}, [&, old_row](Status status) {
        ASSERT_TRUE(status.ok());
        maintainer->OnBaseWrite(entity->name, old_row, std::nullopt);
        done = true;
      });
    });
    loop.RunFor(kSecond);
    ASSERT_TRUE(done);
  }

  void Drain() {
    for (int i = 0; i < 600 && !queue.idle(); ++i) loop.RunFor(100 * kMillisecond);
    loop.RunFor(kSecond);
  }

  Result<std::vector<Row>> Run(const std::string& query, const ParamMap& params) {
    Result<std::vector<Row>> out(InternalError("pending"));
    bool done = false;
    executor->Execute(queries.at(query), params, RequestOptions{}, [&](Result<std::vector<Row>> rows) {
      out = std::move(rows);
      done = true;
    });
    loop.RunFor(2 * kSecond);
    EXPECT_TRUE(done);
    return out;
  }

  Row Profile(int64_t id, const std::string& name, int64_t bday) {
    Row row;
    row.SetInt("user_id", id);
    row.SetString("name", name);
    row.SetInt("bday", bday);
    return row;
  }

  Row Edge(int64_t a, int64_t b) {
    Row row;
    row.SetInt("f1", a);
    row.SetInt("f2", b);
    return row;
  }
};

TEST(IndexIntegrationTest, PointLookupReadsBaseRow) {
  MiniScads s;
  s.RegisterQuery("profile_by_id", "SELECT p.* FROM profiles p WHERE p.user_id = <u>");
  s.PutRow("profiles", s.Profile(1, "ada", 19850101));
  s.Drain();
  auto rows = s.Run("profile_by_id", {{"u", Value(int64_t{1})}});
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].GetString("name"), "ada");
  // Missing user -> empty set.
  auto none = s.Run("profile_by_id", {{"u", Value(int64_t{999})}});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(IndexIntegrationTest, SelectionIndexWithOrderAndLimit) {
  MiniScads s;
  s.RegisterQuery("recent_listings",
                  "SELECT l.* FROM listings l WHERE l.city = <c> "
                  "ORDER BY l.created DESC LIMIT 3");
  for (int i = 0; i < 6; ++i) {
    Row listing;
    listing.SetInt("listing_id", i);
    listing.SetString("city", i % 2 == 0 ? "sf" : "la");
    listing.SetInt("created", 1000 + i);
    s.PutRow("listings", listing);
  }
  s.Drain();
  auto rows = s.Run("recent_listings", {{"c", Value(std::string("sf"))}});
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 3u);
  // Descending by created: 1004, 1002, 1000.
  EXPECT_EQ((*rows)[0].GetInt("created"), 1004);
  EXPECT_EQ((*rows)[1].GetInt("created"), 1002);
  EXPECT_EQ((*rows)[2].GetInt("created"), 1000);
}

TEST(IndexIntegrationTest, SelectionIndexFollowsRowUpdates) {
  MiniScads s;
  s.RegisterQuery("by_city",
                  "SELECT l.* FROM listings l WHERE l.city = <c> ORDER BY l.created LIMIT 10");
  Row listing;
  listing.SetInt("listing_id", 7);
  listing.SetString("city", "sf");
  listing.SetInt("created", 42);
  s.PutRow("listings", listing);
  s.Drain();
  ASSERT_EQ(s.Run("by_city", {{"c", Value(std::string("sf"))}})->size(), 1u);
  // Move the listing to another city: old entry must disappear.
  listing.SetString("city", "nyc");
  s.PutRow("listings", listing);
  s.Drain();
  EXPECT_TRUE(s.Run("by_city", {{"c", Value(std::string("sf"))}})->empty());
  ASSERT_EQ(s.Run("by_city", {{"c", Value(std::string("nyc"))}})->size(), 1u);
  // Delete the row entirely.
  s.DeleteRow("listings", listing);
  s.Drain();
  EXPECT_TRUE(s.Run("by_city", {{"c", Value(std::string("nyc"))}})->empty());
}

TEST(IndexIntegrationTest, PaperBirthdayQueryEndToEnd) {
  MiniScads s;
  s.RegisterQuery("birthday",
                  "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
                  "WHERE f.f1 = <user_id> OR f.f2 = <user_id> ORDER BY p.bday");
  // Users: 1 (alice) friends with 2,3; 4 is a friend of alice via (4,1).
  s.PutRow("profiles", s.Profile(1, "alice", 300));
  s.PutRow("profiles", s.Profile(2, "bob", 200));
  s.PutRow("profiles", s.Profile(3, "carol", 100));
  s.PutRow("profiles", s.Profile(4, "dave", 150));
  s.PutRow("friendships", s.Edge(1, 2));
  s.PutRow("friendships", s.Edge(1, 3));
  s.PutRow("friendships", s.Edge(4, 1));  // symmetric: alice sees dave
  s.Drain();
  auto rows = s.Run("birthday", {{"user_id", Value(int64_t{1})}});
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 3u);
  // Ordered by bday ascending: carol(100), dave(150), bob(200).
  EXPECT_EQ((*rows)[0].GetString("name"), "carol");
  EXPECT_EQ((*rows)[1].GetString("name"), "dave");
  EXPECT_EQ((*rows)[2].GetString("name"), "bob");
}

TEST(IndexIntegrationTest, BirthdayIndexUpdatesWhenProfileChanges) {
  MiniScads s;
  s.RegisterQuery("birthday",
                  "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
                  "WHERE f.f1 = <user_id> OR f.f2 = <user_id> ORDER BY p.bday");
  s.PutRow("profiles", s.Profile(1, "alice", 300));
  s.PutRow("profiles", s.Profile(2, "bob", 200));
  s.PutRow("profiles", s.Profile(3, "carol", 100));
  s.PutRow("friendships", s.Edge(1, 2));
  s.PutRow("friendships", s.Edge(1, 3));
  s.Drain();
  // Bob moves his birthday before carol's: order must flip.
  s.PutRow("profiles", s.Profile(2, "bob", 50));
  s.Drain();
  auto rows = s.Run("birthday", {{"user_id", Value(int64_t{1})}});
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].GetString("name"), "bob");
  EXPECT_EQ((*rows)[0].GetInt("bday"), 50);
  EXPECT_EQ((*rows)[1].GetString("name"), "carol");
}

TEST(IndexIntegrationTest, UnfriendRemovesIndexEntries) {
  MiniScads s;
  s.RegisterQuery("birthday",
                  "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
                  "WHERE f.f1 = <user_id> OR f.f2 = <user_id> ORDER BY p.bday");
  s.PutRow("profiles", s.Profile(1, "alice", 300));
  s.PutRow("profiles", s.Profile(2, "bob", 200));
  s.PutRow("friendships", s.Edge(1, 2));
  s.Drain();
  ASSERT_EQ(s.Run("birthday", {{"user_id", Value(int64_t{1})}})->size(), 1u);
  s.DeleteRow("friendships", s.Edge(1, 2));
  s.Drain();
  EXPECT_TRUE(s.Run("birthday", {{"user_id", Value(int64_t{1})}})->empty());
  EXPECT_TRUE(s.Run("birthday", {{"user_id", Value(int64_t{2})}})->empty());
}

TEST(IndexIntegrationTest, FriendsOfFriendsEndToEnd) {
  MiniScads s;
  s.RegisterQuery("fof",
                  "SELECT p.* FROM friendships a JOIN friendships b ON a.f2 = b.f1 "
                  "JOIN profiles p ON b.f2 = p.user_id WHERE a.f1 = <user_id>");
  for (int64_t i = 1; i <= 5; ++i) {
    s.PutRow("profiles", s.Profile(i, "user" + std::to_string(i), 100 * i));
  }
  // Graph: 1-2, 2-3, 2-4, 4-5. FoF(1) = {3, 4}; 5 is three hops away.
  s.PutRow("friendships", s.Edge(1, 2));
  s.PutRow("friendships", s.Edge(2, 3));
  s.PutRow("friendships", s.Edge(2, 4));
  s.PutRow("friendships", s.Edge(4, 5));
  s.Drain();
  auto rows = s.Run("fof", {{"user_id", Value(int64_t{1})}});
  ASSERT_TRUE(rows.ok()) << rows.status();
  std::vector<int64_t> ids;
  for (const Row& row : *rows) ids.push_back(row.GetInt("user_id"));
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<int64_t>{3, 4}));
}

TEST(IndexIntegrationTest, FriendsOfFriendsSurvivesUnfriendWithWitnessCounting) {
  MiniScads s;
  s.RegisterQuery("fof",
                  "SELECT p.* FROM friendships a JOIN friendships b ON a.f2 = b.f1 "
                  "JOIN profiles p ON b.f2 = p.user_id WHERE a.f1 = <user_id>");
  for (int64_t i = 1; i <= 4; ++i) {
    s.PutRow("profiles", s.Profile(i, "user" + std::to_string(i), 100 * i));
  }
  // Two witness paths 1->3: via 2 and via 4.
  s.PutRow("friendships", s.Edge(1, 2));
  s.PutRow("friendships", s.Edge(2, 3));
  s.PutRow("friendships", s.Edge(1, 4));
  s.PutRow("friendships", s.Edge(4, 3));
  s.Drain();
  auto rows = s.Run("fof", {{"user_id", Value(int64_t{1})}});
  ASSERT_TRUE(rows.ok());
  // FoF(1) = N(N(1)) \ {1} = {3}; the two witness paths collapse to one
  // entry with count 2.
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].GetInt("user_id"), 3);
  // Remove one path: 3 must stay reachable via the other witness.
  s.DeleteRow("friendships", s.Edge(2, 3));
  s.Drain();
  rows = s.Run("fof", {{"user_id", Value(int64_t{1})}});
  ASSERT_TRUE(rows.ok());
  bool has3 = false;
  for (const Row& row : *rows) has3 |= row.GetInt("user_id") == 3;
  EXPECT_TRUE(has3) << "second witness path must keep the fof entry alive";
  // Remove the second path: now 3 disappears.
  s.DeleteRow("friendships", s.Edge(4, 3));
  s.Drain();
  rows = s.Run("fof", {{"user_id", Value(int64_t{1})}});
  ASSERT_TRUE(rows.ok());
  for (const Row& row : *rows) EXPECT_NE(row.GetInt("user_id"), 3);
}

TEST(IndexIntegrationTest, MaintenanceTableContainsFigure3Rows) {
  MiniScads s;
  s.RegisterQuery("birthday",
                  "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
                  "WHERE f.f1 = <user_id> OR f.f2 = <user_id> ORDER BY p.bday");
  s.RegisterQuery("fof",
                  "SELECT p.* FROM friendships a JOIN friendships b ON a.f2 = b.f1 "
                  "JOIN profiles p ON b.f2 = p.user_id WHERE a.f1 = <user_id>");
  auto table = s.maintainer->MaintenanceTable();
  auto contains = [&](const MaintenanceEntry& expected) {
    for (const auto& entry : table) {
      if (entry == expected) return true;
    }
    return false;
  };
  // The paper's four Figure-3 rows, modulo naming:
  EXPECT_TRUE(contains({"adj_friendships", "friendships", "*"}));        // friend index
  EXPECT_TRUE(contains({"idx_fof", "adj_friendships", "*"}));            // fof <- friend index
  EXPECT_TRUE(contains({"idx_birthday", "profiles", "bday"}));           // birthday <- profiles
  EXPECT_TRUE(contains({"idx_birthday", "friendships", "*"}));           // birthday <- friendship
}

TEST(IndexIntegrationTest, QueueLagStaysWithinStalenessBound) {
  MiniScads s;
  const Duration bound = 5 * kSecond;
  s.RegisterQuery("birthday",
                  "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
                  "WHERE f.f1 = <user_id> OR f.f2 = <user_id> ORDER BY p.bday",
                  bound);
  for (int64_t i = 1; i <= 20; ++i) {
    s.PutRow("profiles", s.Profile(i, "u" + std::to_string(i), i));
  }
  for (int64_t i = 2; i <= 20; ++i) {
    s.PutRow("friendships", s.Edge(1, i));
  }
  s.Drain();
  EXPECT_EQ(s.queue.deadline_misses(), 0);
  EXPECT_GT(s.queue.processed(), 0);
}

}  // namespace
}  // namespace scads
