// Tests for the batched scatter-gather pipeline: engine MultiGet, WAL group
// commit (including crash-replay equivalence with per-record appends),
// Router MultiGet/MultiWrite edge cases, and sub-batch failover.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache_directory.h"
#include "cluster/cluster_state.h"
#include "cluster/node.h"
#include "cluster/partition.h"
#include "cluster/router.h"
#include "gtest/gtest.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "storage/engine.h"
#include "storage/wal.h"

namespace scads {
namespace {

// ------------------------------------------------------ StorageEngine ----

TEST(EngineMultiGetTest, PreservesInputOrderWithDuplicatesAndMisses) {
  StorageEngine engine;
  Version v{100, 1};
  ASSERT_TRUE(engine.Put("a", "va", v).ok());
  ASSERT_TRUE(engine.Put("b", "vb", v).ok());
  ASSERT_TRUE(engine.Put("c", "vc", v).ok());

  std::vector<Result<Record>> out = engine.MultiGet({"c", "a", "missing", "c", "b"});
  ASSERT_EQ(out.size(), 5u);
  ASSERT_TRUE(out[0].ok());
  EXPECT_EQ(out[0]->value, "vc");
  ASSERT_TRUE(out[1].ok());
  EXPECT_EQ(out[1]->value, "va");
  EXPECT_EQ(out[2].status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(out[3].ok());
  EXPECT_EQ(out[3]->value, "vc");
  ASSERT_TRUE(out[4].ok());
  EXPECT_EQ(out[4]->value, "vb");
  // Duplicates resolve from the shared probe, not a second descent.
  EXPECT_EQ(engine.metrics().CounterValue("multigets"), 1);
  EXPECT_EQ(engine.metrics().CounterValue("gets"), 5);
}

TEST(EngineMultiGetTest, EmptyKeySetAndTombstones) {
  StorageEngine engine;
  Version v{100, 1};
  ASSERT_TRUE(engine.Put("k", "v", v).ok());
  ASSERT_TRUE(engine.Delete("k", Version{101, 1}).ok());
  EXPECT_TRUE(engine.MultiGet({}).empty());
  std::vector<Result<Record>> out = engine.MultiGet({"k"});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].status().code(), StatusCode::kNotFound);
}

TEST(EngineMultiGetTest, LargeSortedAndReverseProbeSetsAgreeWithGet) {
  StorageEngine engine;
  Version v{100, 1};
  for (int i = 0; i < 500; ++i) {
    std::string key = "key" + std::to_string(1000 + i);
    ASSERT_TRUE(engine.Put(key, "v" + std::to_string(i), v).ok());
  }
  std::vector<std::string> probes;
  for (int i = 499; i >= 0; i -= 7) probes.push_back("key" + std::to_string(1000 + i));
  probes.push_back("key0000");  // before first
  probes.push_back("key9999");  // after last
  std::vector<Result<Record>> out = engine.MultiGet(probes);
  ASSERT_EQ(out.size(), probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    Result<Record> single = engine.Get(probes[i]);
    ASSERT_EQ(out[i].ok(), single.ok()) << probes[i];
    if (single.ok()) {
      EXPECT_EQ(out[i]->value, single->value);
    }
  }
}

// ------------------------------------------------- WAL group commit ------

WalRecord MakeRecord(const std::string& key, const std::string& value, Time ts) {
  WalRecord record;
  record.type = value.empty() ? WalRecord::Type::kDelete : WalRecord::Type::kPut;
  record.key = key;
  record.value = value;
  record.version = Version{ts, 1};
  return record;
}

TEST(WalGroupCommitTest, AppendBatchBytesIdenticalToSequentialAppends) {
  std::vector<WalRecord> records = {MakeRecord("a", "1", 10), MakeRecord("b", "22", 11),
                                    MakeRecord("c", "", 12)};
  MemoryWalSink sequential, batched;
  WalWriter seq_writer(&sequential), batch_writer(&batched);
  for (const WalRecord& record : records) ASSERT_TRUE(seq_writer.Append(record).ok());
  ASSERT_TRUE(batch_writer.AppendBatch(records).ok());
  // Byte-identical logs: recovery cannot tell the histories apart.
  EXPECT_EQ(sequential.Contents(), batched.Contents());
  auto replayed = ReadWal(batched.Contents());
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) EXPECT_EQ((*replayed)[i], records[i]);
}

TEST(WalGroupCommitTest, ApplyBatchSyncsOncePerBatch) {
  MemoryWalSink sink;
  EngineOptions options;
  options.wal = &sink;
  options.wal_sync_every_write = true;
  StorageEngine engine(options);
  std::vector<WalRecord> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(MakeRecord("k" + std::to_string(i), "v", 100 + i));
  }
  ASSERT_TRUE(engine.ApplyBatch(batch).ok());
  EXPECT_EQ(sink.sync_count(), 1);
  EXPECT_EQ(engine.metrics().CounterValue("wal_appends"), 10);
  EXPECT_EQ(engine.metrics().CounterValue("wal_batch_syncs"), 1);
  // The same ten records applied one at a time cost ten syncs.
  MemoryWalSink sink2;
  EngineOptions options2;
  options2.wal = &sink2;
  options2.wal_sync_every_write = true;
  StorageEngine engine2(options2);
  for (const WalRecord& record : batch) ASSERT_TRUE(engine2.Apply(record).ok());
  EXPECT_EQ(sink2.sync_count(), 10);
}

TEST(WalGroupCommitTest, CrashReplayRecoversBatchedAndSequentialIdentically) {
  std::vector<WalRecord> history;
  for (int i = 0; i < 20; ++i) {
    history.push_back(MakeRecord("key" + std::to_string(i % 7), "val" + std::to_string(i),
                                 1000 + i));
  }
  // One engine logs the history as two group-committed batches, the other
  // as per-record appends.
  MemoryWalSink batched_sink, sequential_sink;
  EngineOptions batched_options;
  batched_options.wal = &batched_sink;
  StorageEngine batched_engine(batched_options);
  std::vector<WalRecord> first_half(history.begin(), history.begin() + 11);
  std::vector<WalRecord> second_half(history.begin() + 11, history.end());
  ASSERT_TRUE(batched_engine.ApplyBatch(first_half).ok());
  ASSERT_TRUE(batched_engine.ApplyBatch(second_half).ok());
  EngineOptions sequential_options;
  sequential_options.wal = &sequential_sink;
  StorageEngine sequential_engine(sequential_options);
  for (const WalRecord& record : history) ASSERT_TRUE(sequential_engine.Apply(record).ok());

  // "Crash": recover fresh engines from each log; state must be identical.
  auto batched_log = ReadWal(batched_sink.Contents());
  auto sequential_log = ReadWal(sequential_sink.Contents());
  ASSERT_TRUE(batched_log.ok());
  ASSERT_TRUE(sequential_log.ok());
  ASSERT_EQ(batched_log->size(), sequential_log->size());
  auto recovered_batched = StorageEngine::Recover(EngineOptions{}, *batched_log);
  auto recovered_sequential = StorageEngine::Recover(EngineOptions{}, *sequential_log);
  ASSERT_TRUE(recovered_batched.ok());
  ASSERT_TRUE(recovered_sequential.ok());
  EXPECT_EQ((*recovered_batched)->live_count(), (*recovered_sequential)->live_count());
  for (int i = 0; i < 7; ++i) {
    std::string key = "key" + std::to_string(i);
    Result<Record> a = (*recovered_batched)->Get(key);
    Result<Record> b = (*recovered_sequential)->Get(key);
    ASSERT_EQ(a.ok(), b.ok()) << key;
    if (a.ok()) {
      EXPECT_EQ(a->value, b->value);
      EXPECT_TRUE(a->version == b->version);
    }
  }
}

TEST(WalGroupCommitTest, TornTailOfBatchedLogRecoversCleanPrefix) {
  MemoryWalSink sink;
  WalWriter writer(&sink);
  std::vector<WalRecord> batch = {MakeRecord("a", "1", 10), MakeRecord("b", "2", 11),
                                  MakeRecord("c", "3", 12)};
  ASSERT_TRUE(writer.AppendBatch(batch).ok());
  // A crash mid-batch tears the final frame; the intact prefix replays.
  std::string torn = sink.Contents().substr(0, sink.Contents().size() - 5);
  auto replayed = ReadWal(torn);
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed->size(), 2u);
  EXPECT_EQ((*replayed)[0], batch[0]);
  EXPECT_EQ((*replayed)[1], batch[1]);
}

// ------------------------------------------------------ Router batches ---

constexpr NodeId kClient = 1000;

// A small in-process cluster (mirrors cluster_test's harness).
struct TestCluster {
  EventLoop loop;
  SimNetwork network;
  ClusterState cluster;
  std::vector<std::unique_ptr<StorageNode>> nodes;
  std::unique_ptr<Router> router;

  TestCluster(int node_count, int replication_factor,
              NodeConfig node_config = NodeConfig{}, RouterConfig router_config = RouterConfig{})
      : network(&loop, 7) {
    std::vector<NodeId> ids;
    for (int i = 0; i < node_count; ++i) {
      auto node = std::make_unique<StorageNode>(i, &loop, &network, &cluster, node_config,
                                                1000 + static_cast<uint64_t>(i));
      EXPECT_TRUE(cluster.AddNode(i, node.get()).ok());
      node->Start();
      nodes.push_back(std::move(node));
      ids.push_back(i);
    }
    auto map = PartitionMap::Create({"g", "p"}, ids, replication_factor);
    EXPECT_TRUE(map.ok());
    cluster.set_partitions(std::move(map).value());
    router = std::make_unique<Router>(kClient, &loop, &network, &cluster, router_config, 99);
  }

  void RunUntil(const bool& done) {
    for (int i = 0; i < 1000000 && !done; ++i) {
      if (!loop.RunOne()) loop.RunFor(kMillisecond);
    }
    EXPECT_TRUE(done);
  }

  Status PutSync(const std::string& key, const std::string& value,
                 AckMode ack = AckMode::kPrimary) {
    Status out = InternalError("callback never ran");
    bool done = false;
    router->Put(key, value, ack, RequestOptions{}, [&](Status s) {
      out = std::move(s);
      done = true;
    });
    RunUntil(done);
    return out;
  }

  std::vector<Result<Record>> MultiGetSync(const std::vector<std::string>& keys,
                                           bool pin_primary = false) {
    std::vector<Result<Record>> out;
    bool done = false;
    RequestOptions options;
    if (pin_primary) options.read_mode = ReadMode::kPrimaryOnly;
    router->MultiGet(keys, options, [&](std::vector<Result<Record>> results) {
      out = std::move(results);
      done = true;
    });
    RunUntil(done);
    return out;
  }

  std::vector<Status> MultiWriteSync(std::vector<Router::WriteOp> ops,
                                     AckMode ack = AckMode::kPrimary) {
    std::vector<Status> out;
    bool done = false;
    router->MultiWrite(std::move(ops), ack, RequestOptions{}, [&](std::vector<Status> statuses) {
      out = std::move(statuses);
      done = true;
    });
    RunUntil(done);
    return out;
  }
};

TEST(RouterMultiGetTest, EmptyKeySetCompletesImmediately) {
  TestCluster tc(2, 1);
  bool done = false;
  tc.router->MultiGet({}, RequestOptions{}, [&](std::vector<Result<Record>> results) {
    EXPECT_TRUE(results.empty());
    done = true;
  });
  EXPECT_TRUE(done);  // no storage op, no event needed
  EXPECT_EQ(tc.router->window().reads_ok, 0);
}

TEST(RouterMultiGetTest, OrderPreservedWithDuplicatesAndMisses) {
  TestCluster tc(3, 1);
  ASSERT_TRUE(tc.PutSync("apple", "1").ok());
  ASSERT_TRUE(tc.PutSync("grape", "2").ok());
  ASSERT_TRUE(tc.PutSync("zebra", "3").ok());
  auto out = tc.MultiGetSync({"zebra", "apple", "ghost", "zebra", "grape"});
  ASSERT_EQ(out.size(), 5u);
  ASSERT_TRUE(out[0].ok());
  EXPECT_EQ(out[0]->value, "3");
  ASSERT_TRUE(out[1].ok());
  EXPECT_EQ(out[1]->value, "1");
  EXPECT_EQ(out[2].status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(out[3].ok());
  EXPECT_EQ(out[3]->value, "3");
  ASSERT_TRUE(out[4].ok());
  EXPECT_EQ(out[4]->value, "2");
  // Every logical read is accounted (NotFound is an answered read).
  EXPECT_EQ(tc.router->window().reads_ok, 5);
}

TEST(RouterMultiGetTest, OneMessagePerStorageNode) {
  TestCluster tc(1, 1);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(tc.PutSync("key" + std::to_string(i), "v").ok());
  }
  int64_t before = tc.network.sent_count();
  int64_t bytes_before = tc.network.bytes_sent();
  std::vector<std::string> keys;
  for (int i = 0; i < 8; ++i) keys.push_back("key" + std::to_string(i));
  auto out = tc.MultiGetSync(keys);
  ASSERT_EQ(out.size(), 8u);
  for (const auto& r : out) EXPECT_TRUE(r.ok());
  // One node owns everything: exactly one request + one response.
  EXPECT_EQ(tc.network.sent_count() - before, 2);
  EXPECT_GT(tc.network.bytes_sent() - bytes_before, 0);
}

TEST(RouterMultiGetTest, AllCacheHitBatchTouchesNoNode) {
  TestCluster tc(2, 1);
  MetricRegistry metrics;
  CacheConfig config;
  config.enabled = true;
  CacheDirectory cache(config, /*staleness_bound=*/kMinute, &metrics);
  tc.router->set_cache(&cache);
  ASSERT_TRUE(tc.PutSync("apple", "1").ok());
  ASSERT_TRUE(tc.PutSync("zebra", "2").ok());
  tc.loop.RunFor(kSecond);
  // Write-through Puts primed the cache; within the staleness bound the
  // whole batch is served locally, duplicates from one lookup each.
  int64_t before = tc.network.sent_count();
  auto out = tc.MultiGetSync({"apple", "zebra", "apple"});
  EXPECT_EQ(tc.network.sent_count() - before, 0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0]->value, "1");
  EXPECT_EQ(out[1]->value, "2");
  EXPECT_EQ(out[2]->value, "1");
  EXPECT_EQ(metrics.CounterValue("cache.point.hits"), 2);  // unique keys
  EXPECT_EQ(tc.router->window().reads_ok, 3);              // logical reads
}

TEST(RouterMultiGetTest, DeadNodeSubBatchRetriesOnOtherReplicaOnly) {
  RouterConfig router_config;
  router_config.read_target = ReadTarget::kPrimary;  // deterministic first choice
  TestCluster tc(2, 2, NodeConfig{}, router_config);
  std::vector<std::string> keys = {"apple", "grape", "zebra"};
  for (const auto& key : keys) {
    ASSERT_TRUE(tc.PutSync(key, "v:" + key, AckMode::kAll).ok());
  }
  // Kill one node. Keys whose primary it was retry their sub-batch on the
  // surviving replica; the other sub-batches are answered directly.
  NodeId dead = tc.cluster.partitions()->ForKey("apple").primary();
  tc.network.SetPartitionGroup(dead, 42);
  auto out = tc.MultiGetSync(keys);
  ASSERT_EQ(out.size(), 3u);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(out[i].ok()) << keys[i] << ": " << out[i].status().ToString();
    EXPECT_EQ(out[i]->value, "v:" + keys[i]);
  }
  EXPECT_EQ(tc.router->window().reads_ok, 3);
}

TEST(RouterMultiGetTest, OverloadedNodeShedsBatchToOtherReplica) {
  RouterConfig router_config;
  router_config.read_target = ReadTarget::kPrimary;
  TestCluster tc(2, 2, NodeConfig{}, router_config);
  ASSERT_TRUE(tc.PutSync("apple", "v", AckMode::kAll).ok());
  // Saturate the primary's queue: its HandleMultiGet sheds with
  // kResourceExhausted and the router redirects the sub-batch without
  // waiting for a timeout.
  NodeId primary = tc.cluster.partitions()->ForKey("apple").primary();
  tc.cluster.GetNode(primary)->InjectBackgroundLoad(10 * kSecond);
  Time start = tc.loop.Now();
  auto out = tc.MultiGetSync({"apple"});
  ASSERT_TRUE(out[0].ok());
  EXPECT_EQ(out[0]->value, "v");
  // Redirect happened via explicit shed, far faster than the 250ms timeout.
  EXPECT_LT(tc.loop.Now() - start, RouterConfig{}.request_timeout);
}

TEST(RouterMultiGetTest, AllCandidatesShedSurfacesResourceExhausted) {
  TestCluster tc(1, 1);
  ASSERT_TRUE(tc.PutSync("apple", "v").ok());
  // The only replica sheds: the batch reports the overload itself, the
  // same status a single Get would return — not a fake unreachability.
  tc.cluster.GetNode(0)->InjectBackgroundLoad(10 * kSecond);
  auto out = tc.MultiGetSync({"apple"});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(tc.router->window().reads_failed, 1);
}

TEST(RouterMultiWriteTest, EmptyAndBasicBatch) {
  TestCluster tc(3, 1);
  EXPECT_TRUE(tc.MultiWriteSync({}).empty());
  std::vector<Router::WriteOp> ops;
  ops.push_back({Router::WriteOp::Kind::kPut, "apple", "1"});
  ops.push_back({Router::WriteOp::Kind::kPut, "grape", "2"});
  ops.push_back({Router::WriteOp::Kind::kPut, "zebra", "3"});
  auto statuses = tc.MultiWriteSync(std::move(ops));
  ASSERT_EQ(statuses.size(), 3u);
  for (const Status& status : statuses) EXPECT_TRUE(status.ok());
  EXPECT_EQ(tc.router->window().writes_ok, 3);
  auto out = tc.MultiGetSync({"apple", "grape", "zebra"});
  EXPECT_EQ(out[0]->value, "1");
  EXPECT_EQ(out[1]->value, "2");
  EXPECT_EQ(out[2]->value, "3");
}

TEST(RouterMultiWriteTest, SameKeyOpsCoalesceToLast) {
  TestCluster tc(2, 1);
  std::vector<Router::WriteOp> ops;
  ops.push_back({Router::WriteOp::Kind::kPut, "k1", "first"});
  ops.push_back({Router::WriteOp::Kind::kPut, "k1", "second"});
  ops.push_back({Router::WriteOp::Kind::kPut, "k2", "kept"});
  ops.push_back({Router::WriteOp::Kind::kDelete, "k2", {}});
  auto statuses = tc.MultiWriteSync(std::move(ops));
  ASSERT_EQ(statuses.size(), 4u);
  for (const Status& status : statuses) EXPECT_TRUE(status.ok());
  auto out = tc.MultiGetSync({"k1", "k2"});
  ASSERT_TRUE(out[0].ok());
  EXPECT_EQ(out[0]->value, "second");          // put-then-put: last wins
  EXPECT_FALSE(out[1].ok());                   // put-then-delete: deleted
  EXPECT_EQ(out[1].status().code(), StatusCode::kNotFound);
}

TEST(RouterMultiWriteTest, QuorumAckReachesSecondaries) {
  TestCluster tc(3, 3);
  std::vector<Router::WriteOp> ops;
  ops.push_back({Router::WriteOp::Kind::kPut, "apple", "a"});
  ops.push_back({Router::WriteOp::Kind::kPut, "zebra", "z"});
  auto statuses = tc.MultiWriteSync(std::move(ops), AckMode::kQuorum);
  for (const Status& status : statuses) ASSERT_TRUE(status.ok());
  for (const std::string& key : {std::string("apple"), std::string("zebra")}) {
    const PartitionInfo& p = tc.cluster.partitions()->ForKey(key);
    int holders = 0;
    for (NodeId replica : p.replicas) {
      if (tc.cluster.GetNode(replica)->engine()->Get(key).ok()) ++holders;
    }
    EXPECT_GE(holders, 2) << key;
  }
}

TEST(RouterMultiWriteTest, DeadPrimarySubBatchFailsOthersSucceed) {
  TestCluster tc(2, 1);
  // Partition the node owning "apple"; the other node's sub-batch commits.
  NodeId dead = tc.cluster.partitions()->ForKey("apple").primary();
  NodeId alive_owner = tc.cluster.partitions()->ForKey("grape").primary();
  ASSERT_NE(dead, alive_owner);
  tc.network.SetPartitionGroup(dead, 42);
  std::vector<Router::WriteOp> ops;
  ops.push_back({Router::WriteOp::Kind::kPut, "apple", "a"});
  ops.push_back({Router::WriteOp::Kind::kPut, "grape", "g"});
  auto statuses = tc.MultiWriteSync(std::move(ops));
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_EQ(statuses[0].code(), StatusCode::kUnavailable);
  EXPECT_TRUE(statuses[1].ok());
  EXPECT_EQ(tc.router->window().writes_ok, 1);
  EXPECT_EQ(tc.router->window().writes_failed, 1);
}

TEST(RouterMultiWriteTest, CacheSeesNewValueBeforeAck) {
  TestCluster tc(2, 1);
  MetricRegistry metrics;
  CacheConfig config;
  config.enabled = true;
  CacheDirectory cache(config, kMinute, &metrics);
  tc.router->set_cache(&cache);
  ASSERT_TRUE(tc.PutSync("apple", "old").ok());
  (void)tc.MultiGetSync({"apple"});  // prime the cache
  std::vector<Router::WriteOp> ops;
  ops.push_back({Router::WriteOp::Kind::kPut, "apple", "new"});
  auto statuses = tc.MultiWriteSync(std::move(ops));
  ASSERT_TRUE(statuses[0].ok());
  // The batched write refreshed the entry synchronously with the ack: a
  // cache-served read cannot observe the predecessor.
  auto out = tc.MultiGetSync({"apple"});
  ASSERT_TRUE(out[0].ok());
  EXPECT_EQ(out[0]->value, "new");
}

}  // namespace
}  // namespace scads
