// Unit tests for src/sim: event loop, network, cloud, failure injection.

#include <algorithm>
#include <vector>

#include "common/types.h"
#include "gtest/gtest.h"
#include "sim/cloud.h"
#include "sim/event_loop.h"
#include "sim/failure.h"
#include "sim/network.h"

namespace scads {
namespace {

// -------------------------------------------------------------- EventLoop --

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(300, [&] { order.push_back(3); });
  loop.ScheduleAt(100, [&] { order.push_back(1); });
  loop.ScheduleAt(200, [&] { order.push_back(2); });
  loop.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.Now(), 300);
}

TEST(EventLoopTest, TiesRunInSchedulingOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.ScheduleAt(50, [&order, i] { order.push_back(i); });
  }
  loop.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, PastEventsClampToNow) {
  EventLoop loop;
  loop.ScheduleAt(100, [] {});
  loop.RunAll();
  bool ran = false;
  loop.ScheduleAt(5, [&] { ran = true; });  // 5 < Now()=100
  loop.RunAll();
  EXPECT_TRUE(ran);
  EXPECT_EQ(loop.Now(), 100);
}

TEST(EventLoopTest, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  Time fired_at = -1;
  loop.ScheduleAt(100, [&] { loop.ScheduleAfter(50, [&] { fired_at = loop.Now(); }); });
  loop.RunAll();
  EXPECT_EQ(fired_at, 150);
}

TEST(EventLoopTest, RunUntilAdvancesClockEvenWhenIdle) {
  EventLoop loop;
  loop.RunUntil(1000);
  EXPECT_EQ(loop.Now(), 1000);
}

TEST(EventLoopTest, RunUntilLeavesLaterEventsPending) {
  EventLoop loop;
  int ran = 0;
  loop.ScheduleAt(10, [&] { ++ran; });
  loop.ScheduleAt(20, [&] { ++ran; });
  loop.RunUntil(15);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.Now(), 15);
  EXPECT_EQ(loop.pending_count(), 1u);
  loop.RunUntil(25);
  EXPECT_EQ(ran, 2);
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  auto id = loop.ScheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(loop.Cancel(id));
  loop.RunAll();
  EXPECT_FALSE(ran);
}

TEST(EventLoopTest, PeriodicFiresRepeatedly) {
  EventLoop loop;
  int fires = 0;
  loop.SchedulePeriodic(10, [&] { ++fires; });
  loop.RunUntil(55);
  EXPECT_EQ(fires, 5);  // t=10,20,30,40,50
}

TEST(EventLoopTest, PeriodicCancelStopsChain) {
  EventLoop loop;
  int fires = 0;
  auto id = loop.SchedulePeriodic(10, [&] { ++fires; });
  loop.RunUntil(25);
  EXPECT_EQ(fires, 2);
  EXPECT_TRUE(loop.Cancel(id));
  loop.RunUntil(200);
  EXPECT_EQ(fires, 2);
}

TEST(EventLoopTest, PeriodicCanCancelItselfFromCallback) {
  EventLoop loop;
  int fires = 0;
  EventLoop::EventId id = EventLoop::kInvalidEvent;
  id = loop.SchedulePeriodic(10, [&] {
    if (++fires == 3) loop.Cancel(id);
  });
  loop.RunUntil(500);
  EXPECT_EQ(fires, 3);
}

TEST(EventLoopTest, NestedSchedulingDuringDispatch) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(10, [&] {
    order.push_back(1);
    loop.ScheduleAt(10, [&] { order.push_back(2); });  // same time, runs after
  });
  loop.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoopTest, ExecutedCountCounts) {
  EventLoop loop;
  loop.ScheduleAt(1, [] {});
  loop.ScheduleAt(2, [] {});
  loop.RunAll();
  EXPECT_EQ(loop.executed_count(), 2);
}

// ---------------------------------------------------------------- Network --

TEST(NetworkTest, DeliversWithLatency) {
  EventLoop loop;
  NetworkConfig cfg;
  cfg.base_latency = 200;
  cfg.jitter_mean = 0;
  SimNetwork net(&loop, 1, cfg);
  Time delivered_at = -1;
  net.Send(0, 1, [&] { delivered_at = loop.Now(); });
  loop.RunAll();
  EXPECT_EQ(delivered_at, 200);
  EXPECT_EQ(net.delivered_count(), 1);
}

TEST(NetworkTest, LoopbackIsFast) {
  EventLoop loop;
  SimNetwork net(&loop, 1);
  Time delivered_at = -1;
  net.Send(3, 3, [&] { delivered_at = loop.Now(); });
  loop.RunAll();
  EXPECT_EQ(delivered_at, 10);
}

TEST(NetworkTest, PartitionDropsAtSend) {
  EventLoop loop;
  SimNetwork net(&loop, 1);
  net.SetPartitionGroup(1, 1);
  bool delivered = false;
  net.Send(0, 1, [&] { delivered = true; });
  loop.RunAll();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.dropped_count(), 1);
}

TEST(NetworkTest, PartitionDropsInFlight) {
  EventLoop loop;
  NetworkConfig cfg;
  cfg.base_latency = 1000;
  cfg.jitter_mean = 0;
  SimNetwork net(&loop, 1, cfg);
  bool delivered = false;
  net.Send(0, 1, [&] { delivered = true; });
  // Partition forms while the message is in flight.
  loop.ScheduleAt(500, [&] { net.SetPartitionGroup(1, 7); });
  loop.RunAll();
  EXPECT_FALSE(delivered);
}

TEST(NetworkTest, HealRestoresConnectivity) {
  EventLoop loop;
  SimNetwork net(&loop, 1);
  net.SetPartitionGroup(1, 1);
  EXPECT_FALSE(net.Connected(0, 1));
  net.Heal();
  EXPECT_TRUE(net.Connected(0, 1));
  bool delivered = false;
  net.Send(0, 1, [&] { delivered = true; });
  loop.RunAll();
  EXPECT_TRUE(delivered);
}

TEST(NetworkTest, SelfAlwaysConnectedEvenWhenPartitioned) {
  EventLoop loop;
  SimNetwork net(&loop, 1);
  net.SetPartitionGroup(4, 9);
  EXPECT_TRUE(net.Connected(4, 4));
}

TEST(NetworkTest, LossDropsRoughlyAtConfiguredRate) {
  EventLoop loop;
  NetworkConfig cfg;
  cfg.loss_probability = 0.3;
  SimNetwork net(&loop, 99, cfg);
  int delivered = 0;
  for (int i = 0; i < 2000; ++i) {
    net.Send(0, 1, [&] { ++delivered; });
  }
  loop.RunAll();
  EXPECT_NEAR(delivered / 2000.0, 0.7, 0.05);
}

TEST(NetworkTest, LatencySamplesAreJittered) {
  EventLoop loop;
  SimNetwork net(&loop, 7);
  Duration a = net.SampleLatency(0, 1);
  bool varies = false;
  for (int i = 0; i < 20; ++i) varies |= (net.SampleLatency(0, 1) != a);
  EXPECT_TRUE(varies);
  EXPECT_GE(a, net.mutable_config()->base_latency);
}

// ------------------------------------------------------------------ Cloud --

CloudConfig FastBootConfig() {
  CloudConfig cfg;
  cfg.boot_delay_mean = 60 * kSecond;
  cfg.boot_delay_jitter = 0;
  return cfg;
}

TEST(CloudTest, InstanceBootsAfterDelay) {
  EventLoop loop;
  SimCloud cloud(&loop, 1, FastBootConfig());
  std::vector<NodeId> ready;
  cloud.set_instance_ready_callback([&](NodeId id) { ready.push_back(id); });
  Result<NodeId> id = cloud.RequestInstance();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(cloud.booting_count(), 1);
  EXPECT_EQ(cloud.running_count(), 0);
  loop.RunUntil(59 * kSecond);
  EXPECT_TRUE(ready.empty());
  loop.RunUntil(61 * kSecond);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], *id);
  EXPECT_EQ(cloud.running_count(), 1);
  EXPECT_EQ(cloud.Get(*id)->state, InstanceState::kRunning);
  EXPECT_EQ(cloud.Get(*id)->running_at, 60 * kSecond);
}

TEST(CloudTest, TerminateWhileBootingIsFreeAndNeverReady) {
  EventLoop loop;
  SimCloud cloud(&loop, 1, FastBootConfig());
  int ready = 0;
  cloud.set_instance_ready_callback([&](NodeId) { ++ready; });
  NodeId id = *cloud.RequestInstance();
  ASSERT_TRUE(cloud.TerminateInstance(id).ok());
  loop.RunUntil(10 * kMinute);
  EXPECT_EQ(ready, 0);
  EXPECT_EQ(cloud.TotalCostMicros(loop.Now()), 0);
  EXPECT_EQ(cloud.active_count(), 0);
}

TEST(CloudTest, BillingRoundsUpToWholePeriods) {
  EventLoop loop;
  SimCloud cloud(&loop, 1, FastBootConfig());
  NodeId id = *cloud.RequestInstance();
  loop.RunUntil(60 * kSecond);  // running now
  loop.RunUntil(60 * kSecond + 90 * kMinute);
  ASSERT_TRUE(cloud.TerminateInstance(id).ok());
  // 90 minutes used -> 2 billed hours.
  EXPECT_EQ(cloud.TotalBilledPeriods(loop.Now()), 2);
  EXPECT_EQ(cloud.TotalCostMicros(loop.Now()), 200000);
}

TEST(CloudTest, RunningInstanceBilledThroughNow) {
  EventLoop loop;
  SimCloud cloud(&loop, 1, FastBootConfig());
  (void)*cloud.RequestInstance();
  loop.RunUntil(60 * kSecond);
  EXPECT_EQ(cloud.TotalBilledPeriods(loop.Now()), 1);  // just started -> 1 period
  loop.RunUntil(60 * kSecond + 3 * kHour + kMinute);
  EXPECT_EQ(cloud.TotalBilledPeriods(loop.Now()), 4);
}

TEST(CloudTest, QuotaEnforced) {
  EventLoop loop;
  CloudConfig cfg = FastBootConfig();
  cfg.max_instances = 2;
  SimCloud cloud(&loop, 1, cfg);
  EXPECT_TRUE(cloud.RequestInstance().ok());
  EXPECT_TRUE(cloud.RequestInstance().ok());
  Result<NodeId> third = cloud.RequestInstance();
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  // Terminating frees quota.
  ASSERT_TRUE(cloud.TerminateInstance(0).ok());
  EXPECT_TRUE(cloud.RequestInstance().ok());
}

TEST(CloudTest, DoubleTerminateFails) {
  EventLoop loop;
  SimCloud cloud(&loop, 1, FastBootConfig());
  NodeId id = *cloud.RequestInstance();
  loop.RunUntil(2 * kMinute);
  EXPECT_TRUE(cloud.TerminateInstance(id).ok());
  EXPECT_EQ(cloud.TerminateInstance(id).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cloud.TerminateInstance(999).code(), StatusCode::kNotFound);
}

TEST(CloudTest, RequestInstancesBatch) {
  EventLoop loop;
  SimCloud cloud(&loop, 1, FastBootConfig());
  auto ids = cloud.RequestInstances(5);
  EXPECT_EQ(ids.size(), 5u);
  loop.RunUntil(2 * kMinute);
  EXPECT_EQ(cloud.running_count(), 5);
  EXPECT_EQ(cloud.RunningInstances().size(), 5u);
}

TEST(CloudTest, BootJitterVariesBootTimes) {
  EventLoop loop;
  CloudConfig cfg;
  cfg.boot_delay_mean = 90 * kSecond;
  cfg.boot_delay_jitter = 30 * kSecond;
  SimCloud cloud(&loop, 42, cfg);
  std::vector<Time> ready_times;
  cloud.set_instance_ready_callback([&](NodeId) { ready_times.push_back(loop.Now()); });
  cloud.RequestInstances(10);
  loop.RunUntil(5 * kMinute);
  ASSERT_EQ(ready_times.size(), 10u);
  bool varies = false;
  for (Time t : ready_times) {
    EXPECT_GE(t, 60 * kSecond);
    EXPECT_LE(t, 120 * kSecond);
    varies |= (t != ready_times[0]);
  }
  EXPECT_TRUE(varies);
}

// ---------------------------------------------------------------- Failure --

TEST(FailureTest, NodeOutageFiresCallbacksAndPartitions) {
  EventLoop loop;
  SimNetwork net(&loop, 1);
  FailureInjector failures(&loop, &net, 2);
  std::vector<NodeId> down, up;
  failures.set_node_down_callback([&](NodeId n) { down.push_back(n); });
  failures.set_node_up_callback([&](NodeId n) { up.push_back(n); });
  failures.ScheduleNodeOutage(5, 100, 50);
  loop.RunUntil(120);
  EXPECT_EQ(down, (std::vector<NodeId>{5}));
  EXPECT_TRUE(up.empty());
  EXPECT_FALSE(net.Connected(0, 5));
  loop.RunUntil(200);
  EXPECT_EQ(up, (std::vector<NodeId>{5}));
  EXPECT_TRUE(net.Connected(0, 5));
}

TEST(FailureTest, TwoDownNodesCannotTalkToEachOther) {
  EventLoop loop;
  SimNetwork net(&loop, 1);
  FailureInjector failures(&loop, &net, 2);
  failures.ScheduleNodeOutage(1, 10, 100);
  failures.ScheduleNodeOutage(2, 10, 100);
  loop.RunUntil(20);
  EXPECT_FALSE(net.Connected(1, 2));
}

TEST(FailureTest, PartitionSplitsAndHeals) {
  EventLoop loop;
  SimNetwork net(&loop, 1);
  FailureInjector failures(&loop, &net, 2);
  failures.SchedulePartition({0, 1}, {2, 3}, 100, 200);
  loop.RunUntil(150);
  EXPECT_TRUE(net.Connected(0, 1));
  EXPECT_TRUE(net.Connected(2, 3));
  EXPECT_FALSE(net.Connected(0, 2));
  loop.RunUntil(400);
  EXPECT_TRUE(net.Connected(0, 2));
  EXPECT_EQ(failures.partitions_injected(), 1);
}

TEST(FailureTest, PartitionFormingMidFlightDropsInFlightMessages) {
  // A message already on the wire when the partition forms must be lost —
  // connectivity is checked at delivery time, not just at send time.
  EventLoop loop;
  NetworkConfig config;
  config.base_latency = 10 * kMillisecond;
  SimNetwork net(&loop, 1, config);
  bool delivered = false;
  net.Send(1, 2, 10, [&] { delivered = true; });
  int64_t dropped_before = net.dropped_count();
  net.SetPartitionGroup(2, 5);  // forms while the message is in flight
  loop.RunFor(kSecond);
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.dropped_count(), dropped_before + 1);

  // Heal and resend: the same edge delivers again.
  net.Heal();
  net.Send(1, 2, 10, [&] { delivered = true; });
  loop.RunFor(kSecond);
  EXPECT_TRUE(delivered);
}

TEST(FailureTest, GrayNodeDelaysAndDropsWithoutDisconnecting) {
  EventLoop loop;
  NetworkConfig config;
  config.base_latency = kMillisecond;
  config.jitter_mean = 0;  // deterministic latency so the multiplier shows
  SimNetwork net(&loop, 1, config);
  FailureInjector failures(&loop, &net, 2);
  failures.ScheduleGrayNode(2, /*start=*/0, /*length=*/kMinute,
                            /*delay_multiplier=*/10.0, /*loss=*/0.0);
  loop.RunFor(kMillisecond);  // gray window armed
  EXPECT_TRUE(net.Connected(1, 2)) << "gray is fail-slow, not fail-stop";
  Time sent_at = loop.Now();
  Time got_at = 0;
  net.Send(1, 2, 10, [&] { got_at = loop.Now(); });
  loop.RunFor(kSecond);
  ASSERT_GT(got_at, 0);
  EXPECT_GE(got_at - sent_at, 10 * kMillisecond) << "delay multiplier not applied";
  EXPECT_EQ(failures.gray_failures_injected(), 1);

  // Total loss on a directed link: forward drops, reverse still delivers.
  failures.ScheduleLossyLink(3, 4, loop.Now(), kMinute, /*loss=*/1.0);
  loop.RunFor(kMillisecond);
  bool forward = false, reverse = false;
  net.Send(3, 4, 10, [&] { forward = true; });
  net.Send(4, 3, 10, [&] { reverse = true; });
  loop.RunFor(kSecond);
  EXPECT_FALSE(forward);
  EXPECT_TRUE(reverse) << "link loss must be directed, not symmetric";
}

TEST(FailureTest, RandomOutageEmpiricalMeansMatchConfiguredDistribution) {
  EventLoop loop;
  SimNetwork net(&loop, 1);
  FailureInjector failures(&loop, &net, 11);
  std::vector<Time> downs, ups;
  failures.set_node_down_callback([&](NodeId) { downs.push_back(loop.Now()); });
  failures.set_node_up_callback([&](NodeId) { ups.push_back(loop.Now()); });
  const Duration mtbf = kMinute;
  const Duration mttr = 5 * kSecond;
  failures.EnableRandomOutages(0, mtbf, mttr);
  loop.RunUntil(12 * kHour);  // several hundred failure/repair cycles

  size_t cycles = std::min(downs.size(), ups.size());
  ASSERT_GE(cycles, 100u);
  double mean_repair = 0;
  for (size_t i = 0; i < cycles; ++i) {
    mean_repair += static_cast<double>(ups[i] - downs[i]);
  }
  mean_repair /= static_cast<double>(cycles);
  double mean_tbf = 0;
  size_t gaps = 0;
  for (size_t i = 0; i + 1 < cycles; ++i) {
    mean_tbf += static_cast<double>(downs[i + 1] - ups[i]);
    ++gaps;
  }
  mean_tbf /= static_cast<double>(gaps);
  // Sample means of an exponential with n >= 100: 25% tolerance is ~3
  // standard errors, loose enough to be seed-robust, tight enough to catch
  // a mixed-up parameter or a non-exponential draw.
  EXPECT_NEAR(mean_repair, static_cast<double>(mttr), 0.25 * static_cast<double>(mttr));
  EXPECT_NEAR(mean_tbf, static_cast<double>(mtbf), 0.25 * static_cast<double>(mtbf));
}

TEST(FailureTest, RandomOutagesRecurUntilDisabled) {
  EventLoop loop;
  SimNetwork net(&loop, 1);
  FailureInjector failures(&loop, &net, 7);
  int down_count = 0;
  failures.set_node_down_callback([&](NodeId) { ++down_count; });
  failures.EnableRandomOutages(0, kMinute, kSecond);
  loop.RunUntil(30 * kMinute);
  // ~30 expected; loose bounds to stay robust across rng details.
  EXPECT_GT(down_count, 5);
  int at_disable = down_count;
  failures.DisableRandomOutages(0);
  loop.RunUntil(60 * kMinute);
  EXPECT_LE(down_count, at_disable + 1);  // at most one armed event fires
}

}  // namespace
}  // namespace scads
