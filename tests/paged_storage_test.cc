// Tests for the larger-than-memory paged storage tier: BufferPool
// mechanics, PagedEngine parity with the RAM StorageEngine on identical op
// traces, asynchronous write-back draining, WAL-backed crash recovery over
// surviving pages, and the StorageNode/load-signal integration.

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/node.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "storage/engine.h"
#include "storage/pagestore/page_store.h"
#include "storage/pagestore/paged_engine.h"
#include "storage/wal.h"

namespace scads {
namespace {

Version V(Time ts, NodeId writer = 0) { return Version{ts, writer}; }

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%05d", i);
  return buf;
}

std::string ValueOf(int i, size_t width = 40) {
  std::string value = "v" + std::to_string(i) + "-";
  while (value.size() < width) value.push_back('x');
  return value;
}

// Small pages and memtable so a few hundred records exercise spill, split,
// fault, and eviction.
PagedStorageConfig SmallConfig() {
  PagedStorageConfig config;
  config.enabled = true;
  config.page_bytes = 2 * 1024;
  config.buffer_pool_bytes = 8 * 1024;
  config.memtable_spill_bytes = 4 * 1024;
  return config;
}

// ------------------------------------------------------------ BufferPool --

TEST(BufferPoolTest, TracksResidencyAndEvictions) {
  BufferPool pool(1000);
  PageFrame* a = pool.Insert(1);
  pool.AdjustBytes(a, 400);
  PageFrame* b = pool.Insert(2);
  pool.AdjustBytes(b, 300);
  EXPECT_EQ(pool.resident_bytes(), 700u);
  EXPECT_EQ(pool.frame_count(), 2u);
  pool.Erase(2);
  EXPECT_EQ(pool.resident_bytes(), 400u);
  EXPECT_EQ(pool.evictions(), 1);
  EXPECT_EQ(pool.resident_peak(), 700u);
}

TEST(BufferPoolTest, PinnedFramesAreNeverVictims) {
  BufferPool pool(100);
  PageFrame* a = pool.Insert(7);
  pool.AdjustBytes(a, 50);
  pool.Pin(a);
  EXPECT_EQ(pool.PickVictim(/*allow_dirty=*/true), nullptr);
  pool.Unpin(a);
  EXPECT_EQ(pool.PickVictim(/*allow_dirty=*/true), a);
}

TEST(BufferPoolTest, ClockGivesTouchedFramesASecondChance) {
  BufferPool pool(1000);
  PageFrame* a = pool.Insert(1);
  PageFrame* b = pool.Insert(2);
  a->referenced = false;
  b->referenced = false;
  pool.Find(1);  // touch: a earns a second chance
  PageFrame* victim = pool.PickVictim(/*allow_dirty=*/false);
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->id, 2u);
}

TEST(BufferPoolTest, DirtyFramesRequireAllowDirty) {
  BufferPool pool(1000);
  PageFrame* a = pool.Insert(1);
  a->referenced = false;
  a->dirty = true;
  EXPECT_EQ(pool.PickVictim(/*allow_dirty=*/false), nullptr);
  EXPECT_EQ(pool.PickVictim(/*allow_dirty=*/true), a);
}

// ------------------------------------------------------------ Page codec --

TEST(PageCodecTest, RoundTripsAndClampsStaleShadows) {
  PageFrame frame;
  frame.lower_bound = "b";
  for (const char* key : {"b", "c", "m", "x"}) {
    Record record;
    record.key = key;
    record.value = std::string("val-") + key;
    record.version = V(7, 3);
    record.tombstone = (key[0] == 'c');
    frame.records.push_back(record);
  }
  std::string bytes = EncodePage(frame);

  PageFrame full;
  ASSERT_TRUE(DecodePage(bytes, "b", "", &full));
  ASSERT_EQ(full.records.size(), 4u);
  EXPECT_EQ(full.records[1].key, "c");
  EXPECT_TRUE(full.records[1].tombstone);
  EXPECT_EQ(full.records[3].value, "val-x");
  EXPECT_EQ(full.records[3].version, V(7, 3));

  // After a split at "m", the lower page's stale image must drop the upper
  // half on decode.
  PageFrame clamped;
  ASSERT_TRUE(DecodePage(bytes, "b", "m", &clamped));
  ASSERT_EQ(clamped.records.size(), 2u);
  EXPECT_EQ(clamped.records.back().key, "c");

  PageFrame empty;
  ASSERT_TRUE(DecodePage("", "b", "", &empty));
  EXPECT_TRUE(empty.records.empty());

  std::string torn = bytes.substr(0, bytes.size() - 3);
  PageFrame bad;
  EXPECT_FALSE(DecodePage(torn, "b", "", &bad));
}

// ----------------------------------------------------------- PagedEngine --

TEST(PagedEngineTest, PutGetDeleteAndVersionRule) {
  EventLoop loop;
  PagedEngineOptions options;
  options.config = SmallConfig();
  PagedEngine engine(&loop, options);

  EXPECT_TRUE(*engine.Put("a", "1", V(10)));
  EXPECT_FALSE(*engine.Put("a", "stale", V(5)));
  EXPECT_EQ(engine.metrics().CounterValue("puts_superseded"), 1);
  EXPECT_EQ(engine.Get("a")->value, "1");
  EXPECT_EQ(engine.live_count(), 1u);

  EXPECT_TRUE(*engine.Delete("a", V(20)));
  EXPECT_TRUE(IsNotFound(engine.Get("a").status()));
  EXPECT_FALSE(*engine.Delete("a", V(15)));  // older tombstone superseded
  EXPECT_EQ(engine.metrics().CounterValue("deletes_superseded"), 1);
  EXPECT_EQ(engine.live_count(), 0u);
  EXPECT_EQ(engine.total_count(), 1u);
  EXPECT_EQ(engine.Put("", "x", V(1)).status().code(), StatusCode::kInvalidArgument);
}

TEST(PagedEngineTest, VersionRuleHoldsAcrossSpillToPages) {
  EventLoop loop;
  PagedEngineOptions options;
  options.config = SmallConfig();
  PagedEngine engine(&loop, options);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(engine.Put(Key(i), ValueOf(i), V(100 + i)).ok());
  }
  ASSERT_GT(engine.metrics().CounterValue("spills"), 0);
  // Key(5) now lives only in the page tier; a stale write must still be
  // superseded (the engine faults the page to version-check).
  EXPECT_FALSE(*engine.Put(Key(5), "stale", V(50)));
  EXPECT_TRUE(*engine.Put(Key(5), "fresh", V(1000)));
  EXPECT_EQ(engine.Get(Key(5))->value, "fresh");
}

TEST(PagedEngineTest, MatchesRamEngineOnRandomTrace) {
  EventLoop loop;
  PagedEngineOptions paged_options;
  paged_options.config = SmallConfig();
  // Pool held to ~25% of the dataset so cold reads genuinely fault.
  paged_options.config.buffer_pool_bytes = 6 * 1024;
  PagedEngine paged(&loop, paged_options);
  StorageEngine ram(EngineOptions{});

  Rng rng(7);
  constexpr int kKeys = 400;
  Time ts = 1;
  for (int op = 0; op < 4000; ++op) {
    int k = static_cast<int>(rng.Uniform(kKeys));
    std::string key = Key(k);
    double coin = rng.NextDouble();
    if (coin < 0.55) {
      // Occasionally reuse an old timestamp to exercise the superseded path.
      Version version = rng.Bernoulli(0.1) ? V(ts / 2) : V(ts++);
      Result<bool> a = paged.Put(key, ValueOf(k), version);
      Result<bool> b = ram.Put(key, ValueOf(k), version);
      ASSERT_EQ(a.ok(), b.ok());
      if (a.ok()) ASSERT_EQ(*a, *b);
    } else if (coin < 0.7) {
      Version version = V(ts++);
      Result<bool> a = paged.Delete(key, version);
      Result<bool> b = ram.Delete(key, version);
      ASSERT_EQ(*a, *b);
    } else {
      Result<Record> a = paged.Get(key);
      Result<Record> b = ram.Get(key);
      ASSERT_EQ(a.ok(), b.ok()) << key;
      if (a.ok()) {
        EXPECT_EQ(a->value, b->value);
        EXPECT_EQ(a->version, b->version);
      }
    }
    // Let async write-back interleave with the trace.
    if (op % 256 == 255) loop.RunFor(6 * kMillisecond);
  }

  // Full-state comparison: every key byte-identical, both orders of scan.
  for (int k = 0; k < kKeys; ++k) {
    Result<Record> a = paged.Get(Key(k));
    Result<Record> b = ram.Get(Key(k));
    ASSERT_EQ(a.ok(), b.ok()) << Key(k);
    if (a.ok()) {
      EXPECT_EQ(a->value, b->value);
      EXPECT_EQ(a->version, b->version);
    }
  }
  Result<std::vector<Record>> scan_a = paged.Scan("", "", 0);
  Result<std::vector<Record>> scan_b = ram.Scan("", "", 0);
  ASSERT_TRUE(scan_a.ok() && scan_b.ok());
  ASSERT_EQ(scan_a->size(), scan_b->size());
  for (size_t i = 0; i < scan_a->size(); ++i) {
    EXPECT_EQ((*scan_a)[i].key, (*scan_b)[i].key);
    EXPECT_EQ((*scan_a)[i].value, (*scan_b)[i].value);
    EXPECT_EQ((*scan_a)[i].version, (*scan_b)[i].version);
  }
  EXPECT_EQ(paged.live_count(), ram.live_count());

  // Read/write counters stay in lockstep with the RAM engine.
  for (const char* name : {"puts", "deletes", "puts_superseded", "deletes_superseded",
                           "gets", "get_misses", "scans"}) {
    EXPECT_EQ(paged.metrics().CounterValue(name), ram.metrics().CounterValue(name)) << name;
  }

  // And the paging actually happened, within budget.
  EXPECT_GT(paged.metrics().CounterValue("page_faults"), 0);
  EXPECT_LE(paged.pool().resident_bytes(), paged_options.config.buffer_pool_bytes);
  EXPECT_LE(paged.pool().resident_peak(), paged_options.config.buffer_pool_bytes);
  EXPECT_EQ(paged.metrics().CounterValue("budget_overruns"), 0);
}

TEST(PagedEngineTest, ScanMergesResidentAndEvictedPages) {
  EventLoop loop;
  PagedEngineOptions options;
  options.config = SmallConfig();
  options.config.buffer_pool_bytes = 4 * 1024;  // only a slice stays resident
  PagedEngine engine(&loop, options);
  StorageEngine ram(EngineOptions{});
  for (int i = 0; i < 250; ++i) {
    ASSERT_TRUE(engine.Put(Key(i), ValueOf(i), V(10 + i)).ok());
    ASSERT_TRUE(ram.Put(Key(i), ValueOf(i), V(10 + i)).ok());
  }
  // Fresh delta on top of spilled pages, plus a shadowing tombstone.
  ASSERT_TRUE(engine.Put(Key(30), "updated", V(5000)).ok());
  ASSERT_TRUE(ram.Put(Key(30), "updated", V(5000)).ok());
  ASSERT_TRUE(engine.Delete(Key(31), V(5001)).ok());
  ASSERT_TRUE(ram.Delete(Key(31), V(5001)).ok());

  struct Case {
    std::string start, end;
    size_t limit;
  };
  for (const Case& c : std::vector<Case>{{"", "", 0},
                                         {Key(17), Key(211), 0},
                                         {Key(25), "", 17},
                                         {Key(29), Key(40), 0}}) {
    Result<std::vector<Record>> a = engine.Scan(c.start, c.end, c.limit);
    Result<std::vector<Record>> b = ram.Scan(c.start, c.end, c.limit);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->size(), b->size()) << c.start << ".." << c.end;
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].key, (*b)[i].key);
      EXPECT_EQ((*a)[i].value, (*b)[i].value);
    }
  }
  // Invalid range rejected like the RAM engine.
  EXPECT_EQ(engine.Scan("z", "a", 0).status().code(), StatusCode::kInvalidArgument);

  // ScanRaw surfaces the tombstone for replication streams.
  std::vector<Record> raw = engine.ScanRaw(Key(31), Key(32), 0);
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_TRUE(raw[0].tombstone);
}

TEST(PagedEngineTest, AsyncWriteBackDrainsDirtyPages) {
  EventLoop loop;
  PagedEngineOptions options;
  options.config = SmallConfig();
  options.config.buffer_pool_bytes = 64 * 1024;  // roomy: no forced writes
  options.config.page_bytes = 1024;
  options.config.memtable_spill_bytes = 2 * 1024;
  options.config.write_back_batch = 2;
  PagedEngine engine(&loop, options);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(engine.Put(Key(i), ValueOf(i), V(10 + i)).ok());
  }
  size_t dirty = engine.dirty_page_count();
  ASSERT_GT(dirty, 4u);
  EXPECT_EQ(engine.file()->writes(), 0);
  EXPECT_GT(engine.io_backlog(), 0);

  // One interval flushes at most write_back_batch pages.
  loop.RunFor(options.config.write_back_interval + 10 * options.config.page_write_latency);
  EXPECT_EQ(engine.file()->writes(), 2);
  // The first page written is the first page dirtied: the spill walks the
  // memtable in key order, and the root page ("" lower bound, id 0) owns
  // the smallest keys.
  EXPECT_EQ(engine.file()->write_log().front(), 0u);

  // Enough intervals drain everything, each page exactly once.
  loop.RunFor(static_cast<Duration>(dirty) * options.config.write_back_interval);
  EXPECT_EQ(engine.dirty_page_count(), 0u);
  EXPECT_EQ(engine.io_backlog(), 0);
  std::vector<PageId> written = engine.file()->write_log();
  std::sort(written.begin(), written.end());
  EXPECT_TRUE(std::adjacent_find(written.begin(), written.end()) == written.end())
      << "a page was written back twice without being re-dirtied";
  EXPECT_EQ(written.size(), dirty);
  EXPECT_EQ(engine.metrics().CounterValue("forced_writebacks"), 0);
}

TEST(PagedEngineTest, ForcedWriteBackKeepsDataCorrectUnderTinyPool) {
  EventLoop loop;
  PagedEngineOptions options;
  options.config = SmallConfig();
  options.config.page_bytes = 1024;
  options.config.buffer_pool_bytes = 3 * 1024;  // ~3 pages resident
  options.config.memtable_spill_bytes = 2 * 1024;
  PagedEngine engine(&loop, options);
  std::map<std::string, std::string> reference;
  for (int i = 0; i < 300; ++i) {
    std::string key = Key((i * 37) % 300);  // non-sequential dirtying order
    std::string value = ValueOf(i);
    ASSERT_TRUE(engine.Put(key, value, V(1000 + i)).ok());
    reference[key] = value;
  }
  // The loop never ran: every page write so far was a forced (eviction)
  // write-back, and reads below keep forcing more.
  EXPECT_GT(engine.metrics().CounterValue("forced_writebacks"), 0);
  for (const auto& [key, value] : reference) {
    Result<Record> got = engine.Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(got->value, value);
  }
  EXPECT_LE(engine.pool().resident_bytes(), options.config.buffer_pool_bytes);
  EXPECT_EQ(engine.live_count(), reference.size());
}

TEST(PagedEngineTest, RecoversFromTornWalOverSurvivingPages) {
  PageFile file;  // the durable disk: outlives the crashed engine
  MemoryWalSink wal;
  PagedStorageConfig config = SmallConfig();
  config.buffer_pool_bytes = 64 * 1024;  // roomy: phase-2 writes stay volatile
  Time crash_wal_size = 0;
  {
    EventLoop loop;
    PagedEngineOptions options;
    options.wal = &wal;
    options.file = &file;
    options.config = config;
    PagedEngine engine(&loop, options);
    // Phase 1: enough to spill, then let write-back make the pages durable.
    for (int i = 0; i < 150; ++i) {
      ASSERT_TRUE(engine.Put(Key(i), ValueOf(i), V(100 + i)).ok());
    }
    loop.RunFor(kSecond);
    ASSERT_EQ(engine.dirty_page_count(), 0u);
    ASSERT_GT(file.writes(), 0);
    // Phase 2: volatile tail — small enough to avoid another spill, and the
    // clock never advances, so none of it reaches the pages.
    int64_t writes_before = file.writes();
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(engine.Put(Key(i), "phase2-" + std::to_string(i), V(9000 + i)).ok());
    }
    ASSERT_TRUE(engine.Delete(Key(140), V(9100)).ok());
    ASSERT_EQ(file.writes(), writes_before);
    crash_wal_size = static_cast<Time>(wal.Contents().size());
  }  // crash

  // Tear the final record mid-frame; ReadWal tolerates the torn tail.
  std::string torn = wal.Contents().substr(0, static_cast<size_t>(crash_wal_size) - 7);
  Result<std::vector<WalRecord>> survived = ReadWal(torn);
  ASSERT_TRUE(survived.ok());

  // Recover the paged engine over the surviving pages + WAL prefix.
  EventLoop loop2;
  PagedEngineOptions recover_options;
  recover_options.file = &file;
  recover_options.config = config;
  Result<std::unique_ptr<PagedEngine>> recovered =
      PagedEngine::Recover(&loop2, recover_options, *survived);
  ASSERT_TRUE(recovered.ok());

  // Reference: the RAM engine replaying the same surviving prefix from
  // nothing. The paged engine must land on the identical live state even
  // though most of phase 1 came from pages, not replay.
  Result<std::unique_ptr<StorageEngine>> reference =
      StorageEngine::Recover(EngineOptions{}, *survived);
  ASSERT_TRUE(reference.ok());

  Result<std::vector<Record>> a = (*recovered)->Scan("", "", 0);
  Result<std::vector<Record>> b = (*reference)->Scan("", "", 0);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].key, (*b)[i].key);
    EXPECT_EQ((*a)[i].value, (*b)[i].value);
    EXPECT_EQ((*a)[i].version, (*b)[i].version);
  }
  EXPECT_EQ((*recovered)->live_count(), (*reference)->live_count());
  // The torn record (and only it) is gone.
  EXPECT_LT(survived->size(), 171u);
}

TEST(PagedEngineTest, PurgeTombstonesMatchesRamEngineLiveState) {
  EventLoop loop;
  PagedEngineOptions options;
  options.config = SmallConfig();
  PagedEngine paged(&loop, options);
  StorageEngine ram(EngineOptions{});
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(paged.Put(Key(i), ValueOf(i), V(100)).ok());
    ASSERT_TRUE(ram.Put(Key(i), ValueOf(i), V(100)).ok());
  }
  // Old tombstones (purgable) and one recent (kept).
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(paged.Delete(Key(i), V(200)).ok());
    ASSERT_TRUE(ram.Delete(Key(i), V(200)).ok());
  }
  ASSERT_TRUE(paged.Delete(Key(50), V(900)).ok());
  ASSERT_TRUE(ram.Delete(Key(50), V(900)).ok());
  // Spill the tombstones down into pages, then purge both engines.
  for (int i = 200; i < 320; ++i) {
    ASSERT_TRUE(paged.Put(Key(i), ValueOf(i), V(300)).ok());
    ASSERT_TRUE(ram.Put(Key(i), ValueOf(i), V(300)).ok());
  }
  size_t purged_paged = paged.PurgeTombstonesBefore(500);
  size_t purged_ram = ram.PurgeTombstonesBefore(500);
  EXPECT_EQ(purged_paged, purged_ram);
  EXPECT_EQ(purged_paged, 40u);
  EXPECT_EQ(paged.live_count(), ram.live_count());
  // Purged keys accept writes at any version again; the kept tombstone
  // still enforces its floor.
  EXPECT_TRUE(*paged.Put(Key(3), "reborn", V(50)));
  EXPECT_TRUE(*ram.Put(Key(3), "reborn", V(50)));
  EXPECT_FALSE(*paged.Put(Key(50), "blocked", V(600)));
  EXPECT_FALSE(*ram.Put(Key(50), "blocked", V(600)));
  // Repeat purges find nothing new.
  EXPECT_EQ(paged.PurgeTombstonesBefore(500), 0u);
}

// ------------------------------------------------------- Byte accounting --

TEST(BytesAccountingTest, ArenaCountsAllocatedBytes) {
  Arena arena;
  EXPECT_EQ(arena.BytesAllocated(), 0u);
  arena.Allocate(100);
  arena.AllocateAligned(64);
  EXPECT_EQ(arena.BytesAllocated(), 164u);
  EXPECT_LE(arena.BytesAllocated(), arena.MemoryUsage());
}

TEST(BytesAccountingTest, SkipListTracksLogicalPayloadBytes) {
  SkipList list(1);
  bool created = false;
  SkipList::Payload* payload = list.FindOrCreate("key", &created);
  list.AssignValue(payload, "0123456789");
  EXPECT_EQ(list.payload_bytes(), 13u);  // 3 key + 10 value
  // Re-assign: logical footprint tracks the current value, not the arena
  // garbage the old copy became.
  list.AssignValue(payload, "abc");
  EXPECT_EQ(list.payload_bytes(), 6u);
  EXPECT_GT(list.bytes_allocated(), list.payload_bytes());
}

TEST(BytesAccountingTest, EnginesExportBytesResident) {
  StorageEngine ram(EngineOptions{});
  ASSERT_TRUE(ram.Put("a", std::string(500, 'x'), V(1)).ok());
  EXPECT_GT(ram.bytes_resident(), 500);
  EXPECT_EQ(ram.metrics().CounterValue("bytes_resident"), ram.bytes_resident());

  EventLoop loop;
  PagedEngineOptions options;
  options.config = SmallConfig();
  PagedEngine paged(&loop, options);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(paged.Put(Key(i), ValueOf(i), V(10 + i)).ok());
  }
  EXPECT_EQ(paged.bytes_resident(),
            static_cast<int64_t>(paged.pool().resident_bytes() + paged.memory_usage() -
                                 paged.pool().resident_bytes()));
  EXPECT_EQ(paged.metrics().CounterValue("bytes_resident"), paged.bytes_resident());
  // A paged engine's residency is bounded by pool + memtable, not dataset.
  EXPECT_LE(paged.pool().resident_bytes(), options.config.buffer_pool_bytes);
}

// ------------------------------------------------- StorageNode integration --

TEST(PagedNodeTest, NodeSelectsPagedEngineAndChargesFaultLatency) {
  EventLoop loop;
  SimNetwork network(&loop, 5);
  ClusterState cluster;
  NodeConfig config;
  config.paged_storage = SmallConfig();
  config.paged_storage.buffer_pool_bytes = 4 * 1024;
  StorageNode node(1, &loop, &network, &cluster, config, /*seed=*/9);
  ASSERT_TRUE(cluster.AddNode(1, &node).ok());

  // Seed directly through the engine (bypassing admission), then drain the
  // IO the seeding accrued so it isn't charged to the first request.
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(node.engine()->Put(Key(i), ValueOf(i), V(10 + i)).ok());
  }
  node.engine()->TakeAccruedIo();

  // io_backlog from the dirty spill pages reaches the load signal and its
  // pressure scalar.
  NodeLoadSignal signal = node.load_signal();
  EXPECT_GT(signal.io_backlog, 0);
  NodeLoadSignal quiet = signal;
  quiet.io_backlog = 0;
  EXPECT_GT(signal.Pressure(100 * kMillisecond, 10 * kMillisecond),
            quiet.Pressure(100 * kMillisecond, 10 * kMillisecond));

  // Let write-back drain so every page has a durable image, then sweep the
  // high keys so the tiny pool deterministically evicts Key(7)'s page.
  auto* paged = static_cast<PagedEngine*>(node.engine());
  loop.RunFor(2 * kSecond);
  ASSERT_EQ(paged->dirty_page_count(), 0u);
  EXPECT_EQ(node.load_signal().io_backlog, 0);
  for (int i = 200; i < 300; ++i) {
    ASSERT_TRUE(node.engine()->Get(Key(i)).ok());
  }
  node.engine()->TakeAccruedIo();

  // Cold read pays the page fault; an immediately repeated read is served
  // from the now-resident frame.
  int64_t faults_before = paged->metrics().CounterValue("page_faults");
  Time cold_done = 0;
  Time start = loop.Now();
  node.HandleGet(Key(7), [&](Result<Record> result) {
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->value, ValueOf(7));
    cold_done = loop.Now();
  });
  loop.RunFor(10 * kMillisecond);
  ASSERT_GT(cold_done, start);
  Duration cold_latency = cold_done - start;
  EXPECT_EQ(paged->metrics().CounterValue("page_faults"), faults_before + 1);

  Time warm_done = 0;
  Time warm_start = loop.Now();
  node.HandleGet(Key(7), [&](Result<Record> result) {
    ASSERT_TRUE(result.ok());
    warm_done = loop.Now();
  });
  loop.RunFor(10 * kMillisecond);
  ASSERT_GT(warm_done, warm_start);
  Duration warm_latency = warm_done - warm_start;
  EXPECT_EQ(cold_latency - warm_latency, config.paged_storage.page_read_latency);
}

TEST(PagedNodeTest, RamEngineNodesReportZeroIoBacklog) {
  EventLoop loop;
  SimNetwork network(&loop, 5);
  ClusterState cluster;
  StorageNode node(1, &loop, &network, &cluster, NodeConfig{}, /*seed=*/9);
  ASSERT_TRUE(node.engine()->Put("a", "1", V(1)).ok());
  EXPECT_EQ(node.engine()->TakeAccruedIo(), 0);
  EXPECT_EQ(node.load_signal().io_backlog, 0);
}

// --------------------------------------------------------- Scan readahead --

// Builds a durable page file (every page written back, no memtable
// leftovers) for a fresh reader engine to scan cold.
size_t BuildDurableFile(EventLoop* loop, PageFile* file, const PagedStorageConfig& config,
                        int records) {
  PagedEngineOptions options;
  options.config = config;
  options.file = file;
  PagedEngine writer(loop, options);
  for (int i = 0; i < records; ++i) {
    EXPECT_TRUE(writer.Put(Key(i), ValueOf(i), V(10 + i)).ok());
  }
  loop->RunFor(5 * kSecond);
  EXPECT_EQ(writer.dirty_page_count(), 0u);
  size_t durable = 0;
  for (PageId id = 0; id < file->page_count(); ++id) {
    if (!file->Contents(id).empty()) ++durable;
  }
  return durable;
}

TEST(PagedEngineTest, ScanReadaheadHidesSequentialFaultLatency) {
  EventLoop loop;
  PageFile file;
  PagedStorageConfig config = SmallConfig();
  config.buffer_pool_bytes = 256 * 1024;
  config.page_bytes = 1024;
  config.memtable_spill_bytes = 2 * 1024;
  size_t durable = BuildDurableFile(&loop, &file, config, 300);
  ASSERT_GT(durable, 3u);

  auto cold_scan = [&](bool readahead, Duration* io, int64_t* faults,
                       int64_t* prefetched) {
    PagedEngineOptions options;
    options.config = config;
    options.config.scan_readahead = readahead;
    options.file = &file;
    PagedEngine reader(&loop, options);
    std::vector<Record> out = reader.ScanRaw("", "", 0);
    *io = reader.TakeAccruedIo();
    *faults = reader.metrics().CounterValue("page_faults");
    *prefetched = reader.metrics().CounterValue("pages_prefetched");
    return out;
  };

  Duration io_on = 0, io_off = 0;
  int64_t faults_on = 0, faults_off = 0, prefetched_on = 0, prefetched_off = 0;
  std::vector<Record> with = cold_scan(true, &io_on, &faults_on, &prefetched_on);
  std::vector<Record> without = cold_scan(false, &io_off, &faults_off, &prefetched_off);

  // Identical results either way...
  ASSERT_EQ(with.size(), 300u);
  ASSERT_EQ(with.size(), without.size());
  for (size_t i = 0; i < with.size(); ++i) {
    EXPECT_EQ(with[i].key, without[i].key);
    EXPECT_EQ(with[i].value, without[i].value);
  }
  // ...but readahead pays for only the FIRST fault on the request path:
  // every later page was loaded while its predecessor was being merged.
  EXPECT_EQ(faults_on, 1);
  EXPECT_EQ(prefetched_on, static_cast<int64_t>(durable) - 1);
  EXPECT_EQ(io_on, config.page_read_latency);
  EXPECT_EQ(faults_off, static_cast<int64_t>(durable));
  EXPECT_EQ(prefetched_off, 0);
  EXPECT_EQ(io_off, static_cast<Duration>(durable) * config.page_read_latency);
}

TEST(PagedEngineTest, ScanReadaheadSkipsWhenPoolHasNoCleanRoom) {
  EventLoop loop;
  PageFile file;
  PagedStorageConfig config = SmallConfig();
  config.buffer_pool_bytes = 256 * 1024;
  config.page_bytes = 1024;
  config.memtable_spill_bytes = 2 * 1024;
  size_t durable = BuildDurableFile(&loop, &file, config, 300);
  ASSERT_GT(durable, 3u);

  // A pool barely over one page: whenever the pinned current page is large,
  // the prefetch finds no clean victim and must skip — never evicting the
  // pinned page, never forcing a write-back, never overrunning the budget.
  PagedEngineOptions options;
  options.config = config;
  options.config.buffer_pool_bytes = 1200;
  options.file = &file;
  PagedEngine reader(&loop, options);
  std::vector<Record> out = reader.ScanRaw("", "", 0);
  EXPECT_EQ(out.size(), 300u);
  EXPECT_GT(reader.metrics().CounterValue("prefetch_skips"), 0);
  EXPECT_EQ(reader.metrics().CounterValue("budget_overruns"), 0);
  EXPECT_EQ(reader.metrics().CounterValue("forced_writebacks"), 0);
  // Every durable page still came in exactly once per visit — by fault or
  // by prefetch; a skipped prefetch degrades to the ordinary fault cost.
  EXPECT_GE(reader.metrics().CounterValue("page_faults") +
                reader.metrics().CounterValue("pages_prefetched"),
            static_cast<int64_t>(durable));
  EXPECT_GT(reader.metrics().CounterValue("page_faults"), 1);
  EXPECT_LE(reader.pool().resident_bytes(), 1200u);
}

}  // namespace
}  // namespace scads
