// Tests for the social-graph subsystem: varint/delta adjacency and post-run
// codecs (round trips, idempotent appends, fuzz against a naive vector
// model), the deterministic power-law generator, and GraphClient feed
// correctness end to end — against a naive reference merge, and
// byte-identical between the RAM and paged engines across seeds.

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/node.h"
#include "cluster/router.h"
#include "common/rng.h"
#include "graph/adjacency_codec.h"
#include "graph/graph_client.h"
#include "graph/graph_gen.h"
#include "graph/social_workload.h"
#include "gtest/gtest.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "storage/codec.h"
#include "storage/pagestore/paged_engine.h"

namespace scads {
namespace {

// ----------------------------------------------------------------- Varint --

TEST(VarintTest, RoundTripsBoundaryValues) {
  for (uint64_t v : std::vector<uint64_t>{0, 1, 127, 128, 129, 16383, 16384,
                                          (1ull << 32) - 1, 1ull << 32,
                                          ~0ull}) {
    std::string bytes;
    PutVarint64(&bytes, v);
    std::string_view input(bytes);
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(&input, &decoded)) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(input.empty());
  }
  // One byte below 128, two through 16383.
  std::string one, two;
  PutVarint64(&one, 127);
  PutVarint64(&two, 128);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(two.size(), 2u);
}

TEST(VarintTest, RejectsTruncation) {
  std::string bytes;
  PutVarint64(&bytes, 1ull << 40);
  bytes.pop_back();
  std::string_view input(bytes);
  uint64_t decoded = 0;
  EXPECT_FALSE(GetVarint64(&input, &decoded));
}

// -------------------------------------------------------- AdjacencyCodec --

TEST(AdjacencyCodecTest, RoundTripsEmptySingleAndLarge) {
  for (const auto& ids : std::vector<std::vector<uint64_t>>{
           {}, {0}, {42}, {0, 1, 2}, {5, 100, 101, 1000000, 1ull << 50}}) {
    std::string bytes = AdjacencyCodec::Encode(ids);
    std::vector<uint64_t> decoded;
    ASSERT_TRUE(AdjacencyCodec::Decode(bytes, &decoded));
    EXPECT_EQ(decoded, ids);
    uint64_t degree = 0;
    ASSERT_TRUE(AdjacencyCodec::Degree(bytes, &degree));
    EXPECT_EQ(degree, ids.size());
  }
  // Large dense list: delta coding keeps it near 1 byte/edge.
  std::vector<uint64_t> dense(5000);
  for (size_t i = 0; i < dense.size(); ++i) dense[i] = 10 * i;  // deltas of 10
  std::string bytes = AdjacencyCodec::Encode(dense);
  std::vector<uint64_t> decoded;
  ASSERT_TRUE(AdjacencyCodec::Decode(bytes, &decoded));
  EXPECT_EQ(decoded, dense);
  EXPECT_LE(bytes.size(), AdjacencyCodec::NaiveBytes(dense.size()) / 4);
}

TEST(AdjacencyCodecTest, EmptyBytesAreAnEmptyList) {
  std::vector<uint64_t> decoded{1, 2, 3};
  ASSERT_TRUE(AdjacencyCodec::Decode("", &decoded));
  EXPECT_TRUE(decoded.empty());
  uint64_t degree = 7;
  ASSERT_TRUE(AdjacencyCodec::Degree("", &degree));
  EXPECT_EQ(degree, 0u);
}

TEST(AdjacencyCodecTest, AppendIsIdempotentAndKeepsOrder) {
  std::string bytes;
  EXPECT_TRUE(AdjacencyCodec::Append(&bytes, 50));
  EXPECT_TRUE(AdjacencyCodec::Append(&bytes, 10));
  EXPECT_TRUE(AdjacencyCodec::Append(&bytes, 90));
  std::string before = bytes;
  EXPECT_FALSE(AdjacencyCodec::Append(&bytes, 50));  // already present
  EXPECT_EQ(bytes, before);                          // encoding untouched
  std::vector<uint64_t> decoded;
  ASSERT_TRUE(AdjacencyCodec::Decode(bytes, &decoded));
  EXPECT_EQ(decoded, (std::vector<uint64_t>{10, 50, 90}));
  EXPECT_TRUE(AdjacencyCodec::Remove(&bytes, 50));
  EXPECT_FALSE(AdjacencyCodec::Remove(&bytes, 50));  // already gone
  ASSERT_TRUE(AdjacencyCodec::Decode(bytes, &decoded));
  EXPECT_EQ(decoded, (std::vector<uint64_t>{10, 90}));
}

TEST(AdjacencyCodecTest, RejectsCorruptEncodings) {
  std::vector<uint64_t> decoded;
  // Header promises more entries than the body holds.
  std::string truncated;
  PutVarint64(&truncated, 3);
  PutVarint64(&truncated, 5);
  EXPECT_FALSE(AdjacencyCodec::Decode(truncated, &decoded));
  // Trailing bytes past the promised run.
  std::string trailing = AdjacencyCodec::Encode({1, 2});
  trailing.push_back('\x01');
  EXPECT_FALSE(AdjacencyCodec::Decode(trailing, &decoded));
  // A zero delta after the first entry is a duplicate.
  std::string dup;
  PutVarint64(&dup, 2);
  PutVarint64(&dup, 7);
  PutVarint64(&dup, 0);
  EXPECT_FALSE(AdjacencyCodec::Decode(dup, &decoded));
}

// Fuzz: random follow/unfollow traces against a naive sorted-vector model.
TEST(AdjacencyCodecTest, FuzzMatchesNaiveVectorModel) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    Rng rng(seed);
    std::string encoded;
    std::vector<uint64_t> model;
    for (int op = 0; op < 2000; ++op) {
      uint64_t id = rng.Uniform(300);  // small id space forces collisions
      bool remove = rng.NextDouble() < 0.35;
      auto it = std::lower_bound(model.begin(), model.end(), id);
      bool present = it != model.end() && *it == id;
      if (remove) {
        EXPECT_EQ(AdjacencyCodec::Remove(&encoded, id), present);
        if (present) model.erase(it);
      } else {
        EXPECT_EQ(AdjacencyCodec::Append(&encoded, id), !present);
        if (!present) model.insert(it, id);
      }
      if (op % 97 == 0) {
        std::vector<uint64_t> decoded;
        ASSERT_TRUE(AdjacencyCodec::Decode(encoded, &decoded));
        ASSERT_EQ(decoded, model) << "seed " << seed << " op " << op;
      }
    }
    std::vector<uint64_t> decoded;
    ASSERT_TRUE(AdjacencyCodec::Decode(encoded, &decoded));
    EXPECT_EQ(decoded, model);
  }
}

// ----------------------------------------------------------- PostLogCodec --

TEST(PostLogCodecTest, RoundTripsAndOrdersNewestFirst) {
  std::vector<PostRef> run{{100, 3}, {100, 1}, {90, 7}, {10, 0}};
  std::string bytes = PostLogCodec::Encode(run);
  std::vector<PostRef> decoded;
  ASSERT_TRUE(PostLogCodec::Decode(bytes, &decoded));
  EXPECT_EQ(decoded, run);
  ASSERT_TRUE(PostLogCodec::Decode("", &decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(PostLogCodecTest, AppendCapsAndStaysIdempotent) {
  std::string bytes;
  for (uint64_t ts = 1; ts <= 5; ++ts) {
    EXPECT_TRUE(PostLogCodec::Append(&bytes, PostRef{ts, ts}, 3));
  }
  std::vector<PostRef> run;
  ASSERT_TRUE(PostLogCodec::Decode(bytes, &run));
  ASSERT_EQ(run.size(), 3u);  // capped: oldest dropped
  EXPECT_EQ(run[0], (PostRef{5, 5}));
  EXPECT_EQ(run[2], (PostRef{3, 3}));
  // Exact duplicate: no change.
  std::string before = bytes;
  EXPECT_FALSE(PostLogCodec::Append(&bytes, PostRef{5, 5}, 3));
  EXPECT_EQ(bytes, before);
  // Older than everything in a full run: rejected, not rotated in.
  EXPECT_FALSE(PostLogCodec::Append(&bytes, PostRef{1, 9}, 3));
  // Mid-run insert lands at rank and evicts the tail.
  EXPECT_TRUE(PostLogCodec::Append(&bytes, PostRef{4, 9}, 3));
  ASSERT_TRUE(PostLogCodec::Decode(bytes, &run));
  EXPECT_EQ(run[0], (PostRef{5, 5}));
  EXPECT_EQ(run[1], (PostRef{4, 9}));
  EXPECT_EQ(run[2], (PostRef{4, 4}));
}

// -------------------------------------------------------------- Generator --

TEST(SocialGraphGenTest, DeterministicSortedSelfFree) {
  SocialGraphGenConfig config;
  config.users = 2000;
  SocialGraphGen a(config, 77);
  SocialGraphGen b(config, 77);
  SocialGraphGen other(config, 78);
  bool any_difference = false;
  for (int64_t user : {0l, 1l, 500l, 1999l}) {
    std::vector<uint64_t> follows = a.FollowsOf(user);
    EXPECT_EQ(follows, b.FollowsOf(user)) << user;
    EXPECT_EQ(follows, a.FollowsOf(user)) << user;  // pure: stable on re-call
    if (follows != other.FollowsOf(user)) any_difference = true;
    EXPECT_TRUE(std::is_sorted(follows.begin(), follows.end()));
    EXPECT_TRUE(std::adjacent_find(follows.begin(), follows.end()) == follows.end());
    for (uint64_t f : follows) {
      EXPECT_NE(f, static_cast<uint64_t>(user));
      EXPECT_LT(f, static_cast<uint64_t>(config.users));
    }
  }
  EXPECT_TRUE(any_difference) << "different seeds should produce different graphs";
}

TEST(SocialGraphGenTest, ZipfTargetsMakeLowIdsCelebrities) {
  SocialGraphGenConfig config;
  config.users = 2000;
  config.target_zipf_theta = 0.9;
  SocialGraphGen gen(config, 5);
  std::vector<int64_t> in_degree(static_cast<size_t>(config.users), 0);
  int64_t edges = 0;
  for (int64_t u = 0; u < config.users; ++u) {
    for (uint64_t f : gen.FollowsOf(u)) {
      ++in_degree[f];
      ++edges;
    }
  }
  EXPECT_GT(edges, config.users * 4);  // mean out-degree is double digits
  // The head of the Zipf curve dwarfs the tail.
  int64_t head = in_degree[0] + in_degree[1] + in_degree[2];
  int64_t tail = in_degree[1500] + in_degree[1501] + in_degree[1502];
  EXPECT_GT(head, 10 * std::max<int64_t>(tail, 1));
}

TEST(SocialGraphGenTest, InitialPostsAreNewestFirstBelowBase) {
  SocialGraphGenConfig config;
  SocialGraphGen gen(config, 9);
  uint64_t base = 1ull << 30;
  std::vector<uint64_t> posts = gen.InitialPostTimestamps(3, base);
  EXPECT_EQ(posts.size(), static_cast<size_t>(config.initial_posts));
  EXPECT_EQ(posts, gen.InitialPostTimestamps(3, base));
  for (size_t i = 0; i < posts.size(); ++i) {
    EXPECT_LT(posts[i], base);
    if (i > 0) {
      EXPECT_LT(posts[i], posts[i - 1]);
    }
  }
}

// ----------------------------------------------------- Feed, end to end --

struct MiniCluster {
  explicit MiniCluster(uint64_t seed, bool paged)
      : loop(),
        network(&loop, seed),
        cluster(),
        router_config(),
        router(1 << 20, &loop, &network, &cluster,
               [] {
                 RouterConfig config;
                 config.request_timeout = 2 * kSecond;
                 return config;
               }(),
               seed + 1) {
    NodeConfig node_config;
    node_config.watermark_heartbeat = 0;  // rf=1: no replication streams
    if (paged) {
      node_config.paged_storage.enabled = true;
      node_config.paged_storage.page_bytes = 4 * 1024;
      node_config.paged_storage.buffer_pool_bytes = 24 * 1024;
      node_config.paged_storage.memtable_spill_bytes = 8 * 1024;
    }
    node = std::make_unique<StorageNode>(1, &loop, &network, &cluster, node_config,
                                         seed + 2);
    (void)cluster.AddNode(1, node.get());
    cluster.set_partitions(std::move(PartitionMap::CreateUniform(64, {1}, 1)).value());
  }

  /// Seeds the store from the generator (adjacency + initial posts),
  /// then drains write-back/IO so requests start from a quiet engine.
  void Seed(const SocialGraphGen& gen, uint64_t ts_base) {
    for (int64_t u = 0; u < gen.users(); ++u) {
      std::vector<uint64_t> follows = gen.FollowsOf(u);
      (void)node->engine()->Put(GraphClient::AdjacencyKey(static_cast<uint64_t>(u)),
                                AdjacencyCodec::Encode(follows), Version{1, 0});
      std::vector<PostRef> run;
      uint64_t seq = 0;
      for (uint64_t ts : gen.InitialPostTimestamps(u, ts_base)) {
        run.push_back(PostRef{ts, seq++});
      }
      (void)node->engine()->Put(GraphClient::PostsKey(static_cast<uint64_t>(u)),
                                PostLogCodec::Encode(run), Version{1, 0});
    }
    loop.RunFor(2 * kSecond);
    node->engine()->TakeAccruedIo();
  }

  EventLoop loop;
  SimNetwork network;
  ClusterState cluster;
  RouterConfig router_config;
  Router router;
  std::unique_ptr<StorageNode> node;
};

// Reference feed: brute-force the two-hop neighborhood from the generator
// and rank every post with the same total order.
std::vector<FeedItem> ReferenceFeed(const SocialGraphGen& gen, uint64_t ts_base,
                                    uint64_t user, size_t k) {
  std::set<uint64_t> neighbors;
  std::vector<uint64_t> follows = gen.FollowsOf(static_cast<int64_t>(user));
  for (uint64_t f : follows) {
    neighbors.insert(f);
    for (uint64_t g : gen.FollowsOf(static_cast<int64_t>(f))) neighbors.insert(g);
  }
  neighbors.erase(user);
  std::vector<FeedItem> all;
  for (uint64_t n : neighbors) {
    uint64_t seq = 0;
    for (uint64_t ts : gen.InitialPostTimestamps(static_cast<int64_t>(n), ts_base)) {
      all.push_back(FeedItem{n, seq++, ts});
    }
  }
  std::sort(all.begin(), all.end(), FeedRanksBefore);
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(GraphClientTest, FeedMatchesNaiveReference) {
  SocialGraphGenConfig gen_config;
  gen_config.users = 60;
  gen_config.mean_out_degree = 6.0;
  gen_config.initial_posts = 4;
  SocialGraphGen gen(gen_config, 41);
  uint64_t ts_base = 1ull << 40;

  MiniCluster mini(7, /*paged=*/false);
  mini.Seed(gen, ts_base);
  GraphClient client(ScadsClient{&mini.router});

  for (uint64_t user : {0ull, 3ull, 17ull, 59ull}) {
    std::vector<FeedItem> feed;
    bool done = false;
    client.Feed(user, 10, RequestOptions{}, [&](Result<std::vector<FeedItem>> result) {
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      feed = std::move(result).value();
      done = true;
    });
    mini.loop.RunFor(kSecond);
    ASSERT_TRUE(done);
    EXPECT_EQ(feed, ReferenceFeed(gen, ts_base, user, 10)) << "user " << user;
  }
  EXPECT_EQ(client.stats().feeds_failed, 0);
}

TEST(GraphClientTest, MutationsShapeTheFeed) {
  SocialGraphGenConfig gen_config;
  gen_config.users = 30;
  gen_config.initial_posts = 0;  // start with empty post runs
  SocialGraphGen gen(gen_config, 13);
  MiniCluster mini(3, /*paged=*/false);
  mini.Seed(gen, 1ull << 40);
  GraphClient client(ScadsClient{&mini.router});

  auto run_ok = [&](auto issue) {
    Status status = InternalError("callback never ran");
    issue([&](Status s) { status = std::move(s); });
    mini.loop.RunFor(kSecond);
    ASSERT_TRUE(status.ok()) << status.ToString();
  };
  auto feed_of = [&](uint64_t user) {
    std::vector<FeedItem> feed;
    client.Feed(user, 10, RequestOptions{},
                [&](Result<std::vector<FeedItem>> result) {
                  ASSERT_TRUE(result.ok()) << result.status().ToString();
                  feed = std::move(result).value();
                });
    mini.loop.RunFor(kSecond);
    return feed;
  };

  // A fresh user follows nobody: empty feed.
  uint64_t user = 29, target = 5;
  run_ok([&](auto cb) { client.Unfollow(user, target, RequestOptions{}, cb); });
  std::vector<uint64_t> follows;
  for (uint64_t f : gen.FollowsOf(static_cast<int64_t>(user))) follows.push_back(f);
  for (uint64_t f : follows) {
    run_ok([&](auto cb) { client.Unfollow(user, f, RequestOptions{}, cb); });
  }
  EXPECT_TRUE(feed_of(user).empty());

  // Follow someone who posts: their post arrives; unfollow: it is gone
  // (unless still reachable at two hops through another followee — target
  // 5's own followees are not followed by `user` anymore, so it is gone).
  run_ok([&](auto cb) { client.Follow(user, target, RequestOptions{}, cb); });
  run_ok([&](auto cb) {
    client.Post(target, PostRef{(1ull << 40) + 5, 0}, RequestOptions{}, cb);
  });
  std::vector<FeedItem> feed = feed_of(user);
  ASSERT_FALSE(feed.empty());
  EXPECT_EQ(feed[0], (FeedItem{target, 0, (1ull << 40) + 5}));

  // Idempotence: re-following and re-posting are no-op mutations.
  int64_t noops_before = client.stats().mutations_noop;
  run_ok([&](auto cb) { client.Follow(user, target, RequestOptions{}, cb); });
  run_ok([&](auto cb) {
    client.Post(target, PostRef{(1ull << 40) + 5, 0}, RequestOptions{}, cb);
  });
  EXPECT_EQ(client.stats().mutations_noop, noops_before + 2);

  run_ok([&](auto cb) { client.Unfollow(user, target, RequestOptions{}, cb); });
  EXPECT_TRUE(feed_of(user).empty());
}

// The tentpole cross-engine claim: identical feed results, byte for byte,
// whether the graph lives in RAM or mostly on pages — across seeds, and
// after an identical serial mutation mix.
TEST(GraphClientTest, FeedsByteIdenticalAcrossRamAndPagedEngines) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    SocialGraphGenConfig gen_config;
    gen_config.users = 120;
    gen_config.mean_out_degree = 8.0;
    gen_config.initial_posts = 3;
    SocialGraphGen gen(gen_config, 100 + seed);

    auto run_arm = [&](bool paged) {
      MiniCluster mini(seed, paged);
      mini.Seed(gen, 1ull << 40);
      GraphClient client(ScadsClient{&mini.router});
      SocialWorkloadConfig workload_config;
      workload_config.users = gen_config.users;
      workload_config.ops = 300;
      workload_config.feed_fraction = 0.5;
      workload_config.follow_fraction = 0.2;
      workload_config.unfollow_fraction = 0.1;
      workload_config.post_fraction = 0.2;
      SocialWorkloadDriver driver({&client}, workload_config, 500 + seed);
      bool mixed_done = false;
      driver.Run([&] { mixed_done = true; });
      mini.loop.RunFor(10 * kSecond);
      EXPECT_TRUE(mixed_done);
      EXPECT_EQ(driver.stats().mutations_failed, 0);
      bool pass_done = false;
      driver.RunFeedPass(150, /*pass=*/1, [&] { pass_done = true; });
      mini.loop.RunFor(10 * kSecond);
      EXPECT_TRUE(pass_done);
      EXPECT_EQ(driver.stats().feeds_failed, 0);
      return driver.stats().feed_digest;
    };

    uint64_t ram_digest = run_arm(/*paged=*/false);
    uint64_t paged_digest = run_arm(/*paged=*/true);
    EXPECT_NE(ram_digest, 0u);
    EXPECT_EQ(ram_digest, paged_digest) << "seed " << seed;
  }
}

}  // namespace
}  // namespace scads
