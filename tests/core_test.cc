// Tests for the public Scads facade (src/core) and the paper's baselines
// (src/baseline).

#include <memory>
#include <string>

#include "baseline/adhoc.h"
#include "baseline/appside.h"
#include "core/scads.h"
#include "gtest/gtest.h"

namespace scads {
namespace {

EntityDef ProfilesEntity() {
  EntityDef profiles;
  profiles.name = "profiles";
  profiles.fields = {{"user_id", FieldType::kInt64},
                     {"name", FieldType::kString},
                     {"bday", FieldType::kInt64}};
  profiles.key_fields = {"user_id"};
  return profiles;
}

EntityDef FriendshipsEntity(int64_t cap = 100) {
  EntityDef friendships;
  friendships.name = "friendships";
  friendships.fields = {{"f1", FieldType::kInt64}, {"f2", FieldType::kInt64}};
  friendships.key_fields = {"f1", "f2"};
  friendships.fanout_caps["f1"] = cap;
  friendships.fanout_caps["f2"] = cap;
  return friendships;
}

std::unique_ptr<Scads> MakeSocialScads(std::string spec_text = "") {
  ScadsOptions options;
  options.initial_nodes = 3;
  options.partitions = 8;
  options.consistency_spec = std::move(spec_text);
  auto scads = Scads::Create(options);
  EXPECT_TRUE(scads.ok()) << scads.status();
  auto instance = std::move(scads).value();
  EXPECT_TRUE(instance->DefineEntity(ProfilesEntity()).ok());
  EXPECT_TRUE(instance->DefineEntity(FriendshipsEntity()).ok());
  return instance;
}

Row Profile(int64_t id, const std::string& name, int64_t bday) {
  Row row;
  row.SetInt("user_id", id);
  row.SetString("name", name);
  row.SetInt("bday", bday);
  return row;
}

Row Edge(int64_t a, int64_t b) {
  Row row;
  row.SetInt("f1", a);
  row.SetInt("f2", b);
  return row;
}

TEST(ScadsTest, CreateValidatesOptions) {
  ScadsOptions bad;
  bad.initial_nodes = 0;
  EXPECT_FALSE(Scads::Create(bad).ok());
  ScadsOptions bad_spec;
  bad_spec.consistency_spec = "writes: telepathy";
  EXPECT_FALSE(Scads::Create(bad_spec).ok());
  ScadsOptions merge_without_fn;
  merge_without_fn.consistency_spec = "writes: merge";
  EXPECT_FALSE(Scads::Create(merge_without_fn).ok());
}

TEST(ScadsTest, LifecycleAndPointQueries) {
  auto scads = MakeSocialScads();
  ASSERT_TRUE(scads->RegisterQuery("profile_by_id",
                                   "SELECT p.* FROM profiles p WHERE p.user_id = <u>")
                  .ok());
  ASSERT_TRUE(scads->Start().ok());
  ASSERT_TRUE(scads->PutRowSync("profiles", Profile(1, "ada", 101), RequestOptions{}).ok());
  scads->DrainIndexQueue();
  auto rows = scads->QuerySync("profile_by_id", {{"u", Value(int64_t{1})}}, RequestOptions{});
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].GetString("name"), "ada");
}

TEST(ScadsTest, RejectsUnboundedQueryAtRegistration) {
  ScadsOptions options;
  auto scads = Scads::Create(options);
  ASSERT_TRUE(scads.ok());
  ASSERT_TRUE((*scads)->DefineEntity(ProfilesEntity()).ok());
  // Twitter-style uncapped follow edge.
  EntityDef follows;
  follows.name = "follows";
  follows.fields = {{"follower", FieldType::kInt64}, {"followee", FieldType::kInt64}};
  follows.key_fields = {"follower", "followee"};
  ASSERT_TRUE((*scads)->DefineEntity(follows).ok());
  auto result = (*scads)->RegisterQuery(
      "timeline_fanout",
      "SELECT p.* FROM follows f JOIN profiles p ON f.follower = p.user_id "
      "WHERE f.followee = <star>");
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ScadsTest, BirthdayQueryEndToEndThroughFacade) {
  auto scads = MakeSocialScads("staleness: 5s\n");
  ASSERT_TRUE(scads
                  ->RegisterQuery("birthday",
                                  "SELECT p.* FROM friendships f JOIN profiles p "
                                  "ON f.f2 = p.user_id WHERE f.f1 = <user_id> OR "
                                  "f.f2 = <user_id> ORDER BY p.bday")
                  .ok());
  ASSERT_TRUE(scads->Start().ok());
  ASSERT_TRUE(scads->PutRowSync("profiles", Profile(1, "alice", 300), RequestOptions{}).ok());
  ASSERT_TRUE(scads->PutRowSync("profiles", Profile(2, "bob", 100), RequestOptions{}).ok());
  ASSERT_TRUE(scads->PutRowSync("profiles", Profile(3, "carol", 200), RequestOptions{}).ok());
  ASSERT_TRUE(scads->PutRowSync("friendships", Edge(1, 2), RequestOptions{}).ok());
  ASSERT_TRUE(scads->PutRowSync("friendships", Edge(3, 1), RequestOptions{}).ok());
  scads->DrainIndexQueue();
  auto rows = scads->QuerySync("birthday", {{"user_id", Value(int64_t{1})}}, RequestOptions{});
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].GetString("name"), "bob");
  EXPECT_EQ((*rows)[1].GetString("name"), "carol");
  // The maintenance table renders with the Figure-3 rows.
  std::string table = scads->RenderMaintenanceTable();
  EXPECT_NE(table.find("idx_birthday"), std::string::npos);
  EXPECT_NE(table.find("adj_friendships"), std::string::npos);
}

TEST(ScadsTest, GetRowHonoursStalenessPath) {
  auto scads = MakeSocialScads("staleness: 1m\n");
  ASSERT_TRUE(scads->Start().ok());
  ASSERT_TRUE(scads->PutRowSync("profiles", Profile(9, "zed", 7), RequestOptions{}).ok());
  scads->RunFor(2 * kSecond);
  Row key;
  key.SetInt("user_id", 9);
  auto row = scads->GetRowSync("profiles", key, RequestOptions{});
  ASSERT_TRUE(row.ok()) << row.status();
  EXPECT_EQ(row->GetString("name"), "zed");
  Row missing;
  missing.SetInt("user_id", 404);
  EXPECT_TRUE(IsNotFound(scads->GetRowSync("profiles", missing, RequestOptions{}).status()));
}

TEST(ScadsTest, DeleteRowUpdatesIndexes) {
  auto scads = MakeSocialScads();
  ASSERT_TRUE(scads
                  ->RegisterQuery("birthday",
                                  "SELECT p.* FROM friendships f JOIN profiles p "
                                  "ON f.f2 = p.user_id WHERE f.f1 = <user_id> OR "
                                  "f.f2 = <user_id> ORDER BY p.bday")
                  .ok());
  ASSERT_TRUE(scads->Start().ok());
  ASSERT_TRUE(scads->PutRowSync("profiles", Profile(1, "a", 1), RequestOptions{}).ok());
  ASSERT_TRUE(scads->PutRowSync("profiles", Profile(2, "b", 2), RequestOptions{}).ok());
  ASSERT_TRUE(scads->PutRowSync("friendships", Edge(1, 2), RequestOptions{}).ok());
  scads->DrainIndexQueue();
  ASSERT_EQ(scads->QuerySync("birthday", {{"user_id", Value(int64_t{1})}}, RequestOptions{})->size(), 1u);
  ASSERT_TRUE(scads->DeleteRowSync("friendships", Edge(1, 2), RequestOptions{}).ok());
  scads->DrainIndexQueue();
  EXPECT_TRUE(scads->QuerySync("birthday", {{"user_id", Value(int64_t{1})}}, RequestOptions{})->empty());
}

TEST(ScadsTest, SerializableSpecAppliesCasWrites) {
  auto scads = MakeSocialScads("writes: serializable\n");
  ASSERT_TRUE(scads->Start().ok());
  ASSERT_TRUE(scads->PutRowSync("profiles", Profile(1, "v1", 1), RequestOptions{}).ok());
  ASSERT_TRUE(scads->PutRowSync("profiles", Profile(1, "v2", 2), RequestOptions{}).ok());
  Row key;
  key.SetInt("user_id", 1);
  auto row = scads->GetRowSync("profiles", key, RequestOptions{});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->GetString("name"), "v2");
  EXPECT_GT(scads->write_policy()->stats().writes_committed, 0);
}

TEST(ScadsTest, DurabilitySpecRaisesReplication) {
  auto strict = MakeSocialScads("durability: 99.99999%\n");
  auto relaxed = MakeSocialScads("durability: 90%\n");
  EXPECT_GT(strict->durability_plan().replication_factor,
            relaxed->durability_plan().replication_factor);
}

TEST(ScadsTest, SessionGuaranteesComeFromSpec) {
  auto scads = MakeSocialScads("session: read_your_writes\n");
  ASSERT_TRUE(scads->Start().ok());
  auto session = scads->NewSession();
  Status put = InternalError("pending");
  session->Put("app/key", "value", AckMode::kPrimary, RequestOptions{}, [&](Status s) { put = std::move(s); });
  scads->RunFor(kSecond);
  ASSERT_TRUE(put.ok());
  Result<Record> got(InternalError("pending"));
  bool done = false;
  session->Get("app/key", RequestOptions{}, [&](Result<Record> r) {
    got = std::move(r);
    done = true;
  });
  scads->RunFor(kSecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "value");
}

// --------------------------------------------------------------- Baselines --

TEST(BaselineTest, AdHocAnswersMatchScads) {
  auto scads = MakeSocialScads();
  ASSERT_TRUE(scads
                  ->RegisterQuery("birthday",
                                  "SELECT p.* FROM friendships f JOIN profiles p "
                                  "ON f.f2 = p.user_id WHERE f.f1 = <user_id> OR "
                                  "f.f2 = <user_id> ORDER BY p.bday")
                  .ok());
  ASSERT_TRUE(scads->Start().ok());
  for (int64_t i = 1; i <= 8; ++i) {
    ASSERT_TRUE(scads->PutRowSync("profiles", Profile(i, "u" + std::to_string(i), 10 * i), RequestOptions{}).ok());
  }
  ASSERT_TRUE(scads->PutRowSync("friendships", Edge(1, 3), RequestOptions{}).ok());
  ASSERT_TRUE(scads->PutRowSync("friendships", Edge(5, 1), RequestOptions{}).ok());
  ASSERT_TRUE(scads->PutRowSync("friendships", Edge(2, 6), RequestOptions{}).ok());
  scads->DrainIndexQueue();

  AdHocExecutor adhoc(scads->router(), scads->cluster(), &scads->catalog());
  Result<std::vector<Row>> adhoc_rows(InternalError("pending"));
  bool done = false;
  adhoc.FriendsByBirthday(1, [&](Result<std::vector<Row>> rows) {
    adhoc_rows = std::move(rows);
    done = true;
  });
  scads->RunFor(10 * kSecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(adhoc_rows.ok()) << adhoc_rows.status();

  auto scads_rows = scads->QuerySync("birthday", {{"user_id", Value(int64_t{1})}}, RequestOptions{});
  ASSERT_TRUE(scads_rows.ok());
  ASSERT_EQ(adhoc_rows->size(), scads_rows->size());
  for (size_t i = 0; i < adhoc_rows->size(); ++i) {
    EXPECT_EQ((*adhoc_rows)[i].GetInt("user_id"), (*scads_rows)[i].GetInt("user_id"));
  }
  // The ad-hoc path had to scan the whole friendships table.
  EXPECT_GE(adhoc.rows_scanned(), 3);
}

TEST(BaselineTest, AppSideJoinCostsOneRoundTripPerFriend) {
  auto scads = MakeSocialScads();
  ASSERT_TRUE(scads->Start().ok());
  for (int64_t i = 1; i <= 6; ++i) {
    ASSERT_TRUE(scads->PutRowSync("profiles", Profile(i, "u" + std::to_string(i), 10 * i), RequestOptions{}).ok());
  }
  AppSideJoinClient app(scads->router(), &scads->catalog());
  Status stored = InternalError("pending");
  app.StoreFriendList(1, {2, 3, 4, 5}, [&](Status s) { stored = std::move(s); });
  scads->RunFor(kSecond);
  ASSERT_TRUE(stored.ok());
  int64_t before = app.round_trips();
  Result<std::vector<Row>> rows(InternalError("pending"));
  bool done = false;
  app.FriendsByBirthday(1, [&](Result<std::vector<Row>> r) {
    rows = std::move(r);
    done = true;
  });
  scads->RunFor(5 * kSecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 4u);
  // 1 list fetch + 4 profile gets.
  EXPECT_EQ(app.round_trips() - before, 5);
  // Sorted by birthday.
  EXPECT_EQ((*rows)[0].GetInt("user_id"), 2);
  EXPECT_EQ((*rows)[3].GetInt("user_id"), 5);
}

}  // namespace
}  // namespace scads
