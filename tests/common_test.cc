// Unit tests for src/common: status/result, clock, rng, histogram, strings,
// metrics, types.

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/types.h"
#include "gtest/gtest.h"

namespace scads {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("key k1 missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "key k1 missing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: key k1 missing");
}

TEST(StatusTest, CopyPreservesContents) {
  Status s = AbortedError("conflict");
  Status t = s;
  EXPECT_EQ(s, t);
  t = InvalidArgumentError("bad");
  EXPECT_NE(s, t);
  EXPECT_EQ(s.message(), "conflict");
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status s = UnavailableError("partition");
  Status t = std::move(s);
  EXPECT_EQ(t.code(), StatusCode::kUnavailable);
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ResourceExhaustedError("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(UnavailableError("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(DeadlineExceededError("").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(AbortedError("").code(), StatusCode::kAborted);
  EXPECT_EQ(UnimplementedError("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
}

TEST(StatusTest, PredicatesMatch) {
  EXPECT_TRUE(IsNotFound(NotFoundError("x")));
  EXPECT_FALSE(IsNotFound(AbortedError("x")));
  EXPECT_TRUE(IsUnavailable(UnavailableError("x")));
  EXPECT_TRUE(IsAborted(AbortedError("x")));
  EXPECT_TRUE(IsDeadlineExceeded(DeadlineExceededError("x")));
}

Status FailsThenPropagates() {
  SCADS_RETURN_IF_ERROR(Status::Ok());
  SCADS_RETURN_IF_ERROR(InternalError("inner"));
  return InternalError("unreached");
}

TEST(StatusTest, ReturnIfErrorPropagatesFirstFailure) {
  Status s = FailsThenPropagates();
  EXPECT_EQ(s.message(), "inner");
}

// ---------------------------------------------------------------- Result --

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFoundError("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, WorksWithMoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, WorksWithNonDefaultConstructibleTypes) {
  struct NoDefault {
    explicit NoDefault(int x) : x(x) {}
    int x;
  };
  Result<NoDefault> r(NoDefault(3));
  EXPECT_EQ(r->x, 3);
  Result<NoDefault> e(InternalError("boom"));
  EXPECT_FALSE(e.ok());
}

TEST(ResultTest, CopyAndMoveSemantics) {
  Result<std::string> a(std::string("hello"));
  Result<std::string> b = a;
  EXPECT_EQ(*a, "hello");
  EXPECT_EQ(*b, "hello");
  Result<std::string> c = std::move(b);
  EXPECT_EQ(*c, "hello");
  c = Result<std::string>(UnavailableError("gone"));
  EXPECT_FALSE(c.ok());
  c = a;
  EXPECT_EQ(*c, "hello");
}

TEST(ResultTest, MovingErrorResultDoesNotCorrupt) {
  // Regression: moving the Status out of an error Result must not make the
  // source believe it holds a value (double-free / garbage destructor).
  Result<std::string> source(NotFoundError("gone"));
  Result<std::string> moved = std::move(source);
  EXPECT_FALSE(moved.ok());
  // Both destructors run at scope exit; this test passes by not crashing.
  Result<std::string> reassigned(std::string("live"));
  reassigned = std::move(moved);
  EXPECT_FALSE(reassigned.ok());
}

TEST(ResultTest, AssignErrorOverValueDestroysValueOnce) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> count;
    ~Probe() {
      if (count) ++*count;
    }
  };
  {
    Result<Probe> r(Probe{counter});
    int after_ctor = *counter;  // temporaries may already have destructed
    r = Result<Probe>(InternalError("boom"));
    EXPECT_EQ(*counter, after_ctor + 1);
  }
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return InvalidArgumentError("not positive");
  return x;
}

Result<int> DoubleIfPositive(int x) {
  int v = 0;
  SCADS_ASSIGN_OR_RETURN(v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(DoubleIfPositive(21).value(), 42);
  EXPECT_EQ(DoubleIfPositive(-1).status().code(), StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------------- Clock --

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.SetTime(1000);
  EXPECT_EQ(clock.Now(), 1000);
}

TEST(ClockTest, WallClockIsMonotonic) {
  WallClock* clock = WallClock::Get();
  Time a = clock->Now();
  Time b = clock->Now();
  EXPECT_LE(a, b);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(17);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(19);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(RngTest, NormalMoments) {
  Rng rng(23);
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(29);
  const int n = 20000;
  int64_t small_sum = 0, large_sum = 0;
  for (int i = 0; i < n; ++i) {
    small_sum += rng.Poisson(3.0);
    large_sum += rng.Poisson(200.0);
  }
  EXPECT_NEAR(static_cast<double>(small_sum) / n, 3.0, 0.1);
  EXPECT_NEAR(static_cast<double>(large_sum) / n, 200.0, 2.0);
}

TEST(RngTest, ZipfSkewsTowardLowIndices) {
  Rng rng(31);
  const int64_t n = 1000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 50000; ++i) {
    int64_t v = rng.Zipf(n, 0.99);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, n);
    counts[v]++;
  }
  // Rank 0 should dominate rank 100 heavily under theta=0.99.
  EXPECT_GT(counts[0], counts[100] * 5);
}

TEST(RngTest, ZipfThetaZeroIsUniform) {
  Rng rng(37);
  const int64_t n = 10;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 20000; ++i) counts[rng.Zipf(n, 0.0)]++;
  for (int64_t i = 0; i < n; ++i) EXPECT_NEAR(counts[i], 2000, 300);
}

TEST(RngTest, ParetoRespectsMinimum) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.Pareto(3.0, 2.0), 3.0);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(43);
  Rng b = a.Fork();
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(47);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

// -------------------------------------------------------------- Histogram --

TEST(HistogramTest, EmptyHistogram) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.ValueAtQuantile(0.99), 0);
  EXPECT_DOUBLE_EQ(h.FractionAtOrBelow(100), 1.0);
}

TEST(HistogramTest, SingleValue) {
  LogHistogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 42);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
}

TEST(HistogramTest, ExactInLinearRegion) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(i);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 49);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 99);
}

TEST(HistogramTest, QuantilesMonotone) {
  LogHistogram h;
  Rng rng(53);
  for (int i = 0; i < 10000; ++i) h.Record(static_cast<int64_t>(rng.Exponential(10000)));
  int64_t last = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    int64_t v = h.ValueAtQuantile(q);
    EXPECT_GE(v, last);
    last = v;
  }
  EXPECT_LE(h.ValueAtQuantile(1.0), h.max());
}

TEST(HistogramTest, RelativeErrorBounded) {
  LogHistogram h;
  const int64_t value = 1000000;
  h.Record(value);
  int64_t p50 = h.ValueAtQuantile(0.5);
  // Log-bucketing guarantees <= 1/16 relative error.
  EXPECT_NEAR(static_cast<double>(p50), static_cast<double>(value), value / 16.0 + 1);
}

TEST(HistogramTest, FractionAtOrBelow) {
  LogHistogram h;
  for (int i = 0; i < 90; ++i) h.Record(10);
  for (int i = 0; i < 10; ++i) h.Record(100000);
  EXPECT_NEAR(h.FractionAtOrBelow(1000), 0.9, 1e-9);
  EXPECT_NEAR(h.FractionAtOrBelow(5), 0.0, 1e-9);
  EXPECT_NEAR(h.FractionAtOrBelow(200000), 1.0, 1e-9);
}

TEST(HistogramTest, MergeEqualsCombinedRecording) {
  LogHistogram a, b, combined;
  Rng rng(59);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = static_cast<int64_t>(rng.Uniform(100000));
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.ValueAtQuantile(q), combined.ValueAtQuantile(q));
  }
}

TEST(HistogramTest, ResetClearsEverything) {
  LogHistogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, NegativeClampsToZero) {
  LogHistogram h;
  h.Record(-100);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1);
}

TEST(HistogramTest, RecordManyMatchesLoop) {
  LogHistogram a, b;
  a.RecordMany(777, 50);
  for (int i = 0; i < 50; ++i) b.Record(777);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.ValueAtQuantile(0.5), b.ValueAtQuantile(0.5));
}

TEST(HistogramTest, SummaryMentionsCount) {
  LogHistogram h;
  h.Record(1);
  EXPECT_NE(h.Summary().find("count=1"), std::string::npos);
}

// ---------------------------------------------------------------- Strings --

TEST(StringsTest, SplitAndJoin) {
  auto pieces = StrSplit("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(StrJoin(pieces, "-"), "a-b--c");
  EXPECT_EQ(StrSplit("", ',').size(), 1u);
}

TEST(StringsTest, PrefixSuffix) {
  EXPECT_TRUE(StartsWith("friend_index", "friend"));
  EXPECT_FALSE(StartsWith("fr", "friend"));
  EXPECT_TRUE(EndsWith("friend_index", "_index"));
  EXPECT_FALSE(EndsWith("x", "_index"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%s=%d", "k", 7), "k=7");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(StringsTest, AsciiLower) { EXPECT_EQ(AsciiLower("SeLeCt *"), "select *"); }

TEST(StringsTest, OrderedEncodePreservesOrder) {
  std::vector<int64_t> values{-1000000, -1, 0, 1, 42, 1000000,
                              std::numeric_limits<int64_t>::min(),
                              std::numeric_limits<int64_t>::max()};
  std::sort(values.begin(), values.end());
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_LT(OrderedEncodeInt64(values[i - 1]), OrderedEncodeInt64(values[i]))
        << values[i - 1] << " vs " << values[i];
  }
}

TEST(StringsTest, OrderedEncodeRoundTrips) {
  for (int64_t v : {int64_t{0}, int64_t{-5}, int64_t{123456789}}) {
    int64_t decoded = 0;
    ASSERT_TRUE(OrderedDecodeInt64(OrderedEncodeInt64(v), &decoded));
    EXPECT_EQ(decoded, v);
  }
  int64_t unused;
  EXPECT_FALSE(OrderedDecodeInt64("short", &unused));
}

TEST(StringsTest, AppendKeyPiecePreventsAliasing) {
  std::string k1, k2;
  AppendKeyPiece(&k1, "ab");
  AppendKeyPiece(&k1, "c");
  AppendKeyPiece(&k2, "a");
  AppendKeyPiece(&k2, "bc");
  EXPECT_NE(k1, k2);
}

TEST(StringsTest, PrefixSuccessorBounds) {
  EXPECT_EQ(PrefixSuccessor("abc"), "abd");
  std::string with_ff = std::string("a") + '\xff';
  EXPECT_EQ(PrefixSuccessor(with_ff), "b");
  EXPECT_EQ(PrefixSuccessor("\xff"), "");
  // Every string with prefix p is < PrefixSuccessor(p).
  EXPECT_LT(std::string("abc\xff\xff"), PrefixSuccessor("abc"));
}

// ---------------------------------------------------------------- Metrics --

TEST(MetricsTest, CountersAreNamedAndSticky) {
  MetricRegistry reg;
  reg.GetCounter("reads")->Increment();
  reg.GetCounter("reads")->Increment(2);
  EXPECT_EQ(reg.CounterValue("reads"), 3);
  EXPECT_EQ(reg.CounterValue("missing"), 0);
}

TEST(MetricsTest, HistogramsSticky) {
  MetricRegistry reg;
  reg.GetHistogram("latency")->Record(5);
  EXPECT_EQ(reg.GetHistogram("latency")->count(), 1);
}

TEST(MetricsTest, NamesSorted) {
  MetricRegistry reg;
  reg.GetCounter("b");
  reg.GetCounter("a");
  auto names = reg.CounterNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST(MetricsTest, ResetAllZeroes) {
  MetricRegistry reg;
  reg.GetCounter("c")->Increment(9);
  reg.GetHistogram("h")->Record(9);
  reg.ResetAll();
  EXPECT_EQ(reg.CounterValue("c"), 0);
  EXPECT_EQ(reg.GetHistogram("h")->count(), 0);
}

// ------------------------------------------------------------------ Types --

TEST(TypesTest, VersionOrdering) {
  Version a{100, 1}, b{100, 2}, c{200, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (Version{100, 1}));
  EXPECT_GE(c, b);
}

TEST(TypesTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(500), "500us");
  EXPECT_EQ(FormatDuration(1500), "1.50ms");
  EXPECT_EQ(FormatDuration(2 * kSecond), "2.00s");
  EXPECT_EQ(FormatDuration(90 * kSecond), "1m30s");
  EXPECT_EQ(FormatDuration(25 * kHour), "1d1h");
}

TEST(TypesTest, FormatCount) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(-1234), "-1,234");
}

TEST(TypesTest, FormatMoney) {
  EXPECT_EQ(FormatMoneyMicros(1500000), "$1.50");
  EXPECT_EQ(FormatMoneyMicros(0), "$0.00");
}

// ---------------------------------------------------------------- Logging --

TEST(LoggingTest, LevelGate) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SCADS_LOG(Info) << "suppressed";  // Must not crash.
  SetLogLevel(LogLevel::kWarning);
}

}  // namespace
}  // namespace scads
