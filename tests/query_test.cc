// Tests for src/query: schema/catalog, row codec, parser, analyzer, planner
// — including the paper's three example queries and its Twitter rejection.

#include <string>

#include "gtest/gtest.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "query/planner.h"
#include "query/schema.h"

namespace scads {
namespace {

// Social-network schema mirroring the paper (Figure 3's tables).
Catalog SocialCatalog(int64_t friend_cap = 5000) {
  Catalog catalog;
  EntityDef profiles;
  profiles.name = "profiles";
  profiles.fields = {{"user_id", FieldType::kInt64},
                     {"name", FieldType::kString},
                     {"bday", FieldType::kInt64},
                     {"city", FieldType::kString}};
  profiles.key_fields = {"user_id"};
  EXPECT_TRUE(catalog.AddEntity(profiles).ok());

  EntityDef friendships;
  friendships.name = "friendships";
  friendships.fields = {{"f1", FieldType::kInt64}, {"f2", FieldType::kInt64}};
  friendships.key_fields = {"f1", "f2"};
  if (friend_cap > 0) {
    friendships.fanout_caps["f1"] = friend_cap;
    friendships.fanout_caps["f2"] = friend_cap;
  }
  EXPECT_TRUE(catalog.AddEntity(friendships).ok());

  EntityDef listings;
  listings.name = "listings";
  listings.fields = {{"listing_id", FieldType::kInt64},
                     {"city", FieldType::kString},
                     {"created", FieldType::kInt64},
                     {"title", FieldType::kString}};
  listings.key_fields = {"listing_id"};
  EXPECT_TRUE(catalog.AddEntity(listings).ok());
  return catalog;
}

// ---------------------------------------------------------------- Schema --

TEST(SchemaTest, CatalogValidation) {
  Catalog catalog;
  EntityDef bad;
  EXPECT_FALSE(catalog.AddEntity(bad).ok());  // empty

  bad.name = "t";
  bad.fields = {{"a", FieldType::kInt64}};
  EXPECT_FALSE(catalog.AddEntity(bad).ok());  // no key

  bad.key_fields = {"missing"};
  EXPECT_FALSE(catalog.AddEntity(bad).ok());  // key not a field

  bad.key_fields = {"a"};
  bad.fanout_caps["ghost"] = 5;
  EXPECT_FALSE(catalog.AddEntity(bad).ok());  // cap on unknown field

  bad.fanout_caps.clear();
  EXPECT_TRUE(catalog.AddEntity(bad).ok());
  EXPECT_EQ(catalog.AddEntity(bad).code(), StatusCode::kAlreadyExists);
  EXPECT_NE(catalog.Get("t"), nullptr);
  EXPECT_EQ(catalog.Get("zzz"), nullptr);
}

TEST(SchemaTest, RowAccessors) {
  Row row;
  row.SetInt("id", 7);
  row.SetString("name", "ada");
  EXPECT_TRUE(row.Has("id"));
  EXPECT_FALSE(row.Has("ghost"));
  EXPECT_EQ(row.GetInt("id"), 7);
  EXPECT_EQ(row.GetString("name"), "ada");
  EXPECT_EQ(row.GetInt("ghost"), 0);
  EXPECT_EQ(row.GetString("ghost"), "");
}

TEST(SchemaTest, RowCodecRoundTrip) {
  Catalog catalog = SocialCatalog();
  const EntityDef* profiles = catalog.Get("profiles");
  Row row;
  row.SetInt("user_id", 42);
  row.SetString("name", "bob");
  row.SetInt("bday", 19900101);
  // city intentionally absent
  auto decoded = DecodeRow(*profiles, EncodeRow(*profiles, row));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, row);
  EXPECT_FALSE(decoded->Has("city"));
}

TEST(SchemaTest, RowCodecRejectsTruncation) {
  Catalog catalog = SocialCatalog();
  const EntityDef* profiles = catalog.Get("profiles");
  Row row;
  row.SetInt("user_id", 1);
  row.SetString("name", "x");
  std::string bytes = EncodeRow(*profiles, row);
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(DecodeRow(*profiles, bytes).ok());
}

TEST(SchemaTest, PrimaryKeyEncoding) {
  Catalog catalog = SocialCatalog();
  const EntityDef* friendships = catalog.Get("friendships");
  Row edge;
  edge.SetInt("f1", 10);
  edge.SetInt("f2", 20);
  auto key = EncodePrimaryKey(*friendships, edge);
  ASSERT_TRUE(key.ok());
  EXPECT_TRUE(key->starts_with("t/friendships/"));
  // Order preserved: (10,20) < (10,21) < (11,0).
  Row edge2 = edge;
  edge2.SetInt("f2", 21);
  Row edge3;
  edge3.SetInt("f1", 11);
  edge3.SetInt("f2", 0);
  EXPECT_LT(*key, *EncodePrimaryKey(*friendships, edge2));
  EXPECT_LT(*EncodePrimaryKey(*friendships, edge2), *EncodePrimaryKey(*friendships, edge3));
}

TEST(SchemaTest, PrimaryKeyRequiresKeyFields) {
  Catalog catalog = SocialCatalog();
  Row row;
  row.SetInt("f1", 1);  // f2 missing
  EXPECT_FALSE(EncodePrimaryKey(*catalog.Get("friendships"), row).ok());
}

// ---------------------------------------------------------------- Parser --

TEST(ParserTest, SimpleSelection) {
  auto q = ParseQueryTemplate(
      "SELECT p.* FROM profiles p WHERE p.user_id = <uid>");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->select_alias, "p");
  EXPECT_EQ(q->from.table, "profiles");
  EXPECT_EQ(q->from.alias, "p");
  ASSERT_EQ(q->where.size(), 1u);
  ASSERT_EQ(q->where[0].alternatives.size(), 1u);
  const Predicate& pred = q->where[0].alternatives[0];
  EXPECT_EQ(pred.lhs.field, "user_id");
  EXPECT_TRUE(pred.rhs_is_param);
  EXPECT_EQ(pred.param.name, "uid");
}

TEST(ParserTest, PaperBirthdayQuery) {
  // The paper's §3.2 example (normalized to explicit join syntax).
  auto q = ParseQueryTemplate(
      "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
      "WHERE f.f1 = <user_id> OR f.f2 = <user_id> ORDER BY p.bday");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->joins.size(), 1u);
  EXPECT_EQ(q->joins[0].table.table, "profiles");
  ASSERT_EQ(q->where.size(), 1u);
  EXPECT_EQ(q->where[0].alternatives.size(), 2u);  // the OR
  ASSERT_TRUE(q->order_by.has_value());
  EXPECT_EQ(q->order_by->field, "bday");
  EXPECT_FALSE(q->descending);
}

TEST(ParserTest, OrderDescAndLimit) {
  auto q = ParseQueryTemplate(
      "SELECT l.* FROM listings l WHERE l.city = <city> ORDER BY l.created DESC LIMIT 50");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->descending);
  EXPECT_EQ(q->limit, 50);
}

TEST(ParserTest, TwoHopQuery) {
  auto q = ParseQueryTemplate(
      "SELECT p.* FROM friendships a JOIN friendships b ON a.f2 = b.f1 "
      "JOIN profiles p ON b.f2 = p.user_id WHERE a.f1 = <user_id>");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->joins.size(), 2u);
}

TEST(ParserTest, AliasDefaultsToTableName) {
  auto q = ParseQueryTemplate("SELECT profiles.* FROM profiles WHERE profiles.user_id = <u>");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->from.alias, "profiles");
}

TEST(ParserTest, SyntaxErrorsAreReported) {
  EXPECT_FALSE(ParseQueryTemplate("").ok());
  EXPECT_FALSE(ParseQueryTemplate("SELECT FROM profiles").ok());
  EXPECT_FALSE(ParseQueryTemplate("SELECT p.* FROM").ok());
  EXPECT_FALSE(ParseQueryTemplate("SELECT p.* FROM profiles p WHERE").ok());
  EXPECT_FALSE(ParseQueryTemplate("SELECT p.* FROM profiles p LIMIT many").ok());
  EXPECT_FALSE(ParseQueryTemplate("SELECT p.* FROM profiles p WHERE p.x = <u> garbage").ok());
  EXPECT_FALSE(ParseQueryTemplate("SELECT p.x FROM profiles p").ok());  // only .* allowed
}

TEST(ParserTest, ComparisonOperators) {
  auto q = ParseQueryTemplate(
      "SELECT l.* FROM listings l WHERE l.city = <c> AND l.created >= <since> LIMIT 10");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->where.size(), 2u);
  EXPECT_EQ(q->where[1].alternatives[0].op, CompareOp::kGe);
}

TEST(ParserTest, ParamVersusLessThan) {
  // '<' must lex as an operator here, not a parameter.
  auto q = ParseQueryTemplate(
      "SELECT l.* FROM listings l WHERE l.listing_id = <id> AND l.created < <cutoff> LIMIT 5");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->where[1].alternatives[0].op, CompareOp::kLt);
  EXPECT_EQ(q->where[1].alternatives[0].param.name, "cutoff");
}

// -------------------------------------------------------------- Analyzer --

TEST(AnalyzerTest, PointLookupBoundIsOne) {
  Catalog catalog = SocialCatalog();
  auto q = ParseQueryTemplate("SELECT p.* FROM profiles p WHERE p.user_id = <u>");
  ASSERT_TRUE(q.ok());
  auto bounds = AnalyzeTemplate(catalog, *q);
  ASSERT_TRUE(bounds.ok()) << bounds.status();
  EXPECT_EQ(bounds->read_rows, 1);
}

TEST(AnalyzerTest, CappedFanoutBound) {
  Catalog catalog = SocialCatalog(5000);
  auto q = ParseQueryTemplate(
      "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
      "WHERE f.f1 = <u>");
  ASSERT_TRUE(q.ok());
  auto bounds = AnalyzeTemplate(catalog, *q);
  ASSERT_TRUE(bounds.ok()) << bounds.status();
  EXPECT_EQ(bounds->read_rows, 5000);  // <= friend cap, x1 for pk join
}

TEST(AnalyzerTest, TwitterUnboundedFollowersRejected) {
  // The paper's counterexample: no cap on the follow edge -> reject.
  Catalog catalog = SocialCatalog(/*friend_cap=*/0);
  auto q = ParseQueryTemplate(
      "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
      "WHERE f.f1 = <u>");
  ASSERT_TRUE(q.ok());
  auto bounds = AnalyzeTemplate(catalog, *q);
  EXPECT_EQ(bounds.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(bounds.status().message().find("unbounded"), std::string_view::npos)
      << bounds.status();
}

TEST(AnalyzerTest, UnanchoredQueryRejected) {
  Catalog catalog = SocialCatalog();
  auto q = ParseQueryTemplate("SELECT p.* FROM profiles p WHERE p.bday = <b>");
  ASSERT_TRUE(q.ok());
  // bday has no cap and is not the key: matching rows are unbounded and
  // there is no LIMIT.
  EXPECT_EQ(AnalyzeTemplate(catalog, *q).status().code(), StatusCode::kFailedPrecondition);
}

TEST(AnalyzerTest, LimitBoundsUncappedSelection) {
  Catalog catalog = SocialCatalog();
  auto q = ParseQueryTemplate(
      "SELECT l.* FROM listings l WHERE l.city = <c> ORDER BY l.created DESC LIMIT 50");
  ASSERT_TRUE(q.ok());
  auto bounds = AnalyzeTemplate(catalog, *q);
  ASSERT_TRUE(bounds.ok()) << bounds.status();
  EXPECT_EQ(bounds->read_rows, 50);
  EXPECT_TRUE(bounds->bounded_by_limit);
}

TEST(AnalyzerTest, TwoHopMultipliesBounds) {
  Catalog catalog = SocialCatalog(100);
  auto q = ParseQueryTemplate(
      "SELECT p.* FROM friendships a JOIN friendships b ON a.f2 = b.f1 "
      "JOIN profiles p ON b.f2 = p.user_id WHERE a.f1 = <u>");
  ASSERT_TRUE(q.ok());
  auto bounds = AnalyzeTemplate(catalog, *q);
  ASSERT_TRUE(bounds.ok()) << bounds.status();
  EXPECT_EQ(bounds->read_rows, 100 * 100);
}

TEST(AnalyzerTest, ReadBudgetEnforced) {
  Catalog catalog = SocialCatalog(5000);
  auto q = ParseQueryTemplate(
      "SELECT p.* FROM friendships a JOIN friendships b ON a.f2 = b.f1 "
      "JOIN profiles p ON b.f2 = p.user_id WHERE a.f1 = <u>");
  ASSERT_TRUE(q.ok());
  // 5000 * 5000 = 25M > default budget.
  EXPECT_EQ(AnalyzeTemplate(catalog, *q).status().code(), StatusCode::kFailedPrecondition);
}

TEST(AnalyzerTest, UnknownTableAndFieldAreInvalid) {
  Catalog catalog = SocialCatalog();
  auto q1 = ParseQueryTemplate("SELECT x.* FROM unicorns x WHERE x.id = <i>");
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(AnalyzeTemplate(catalog, *q1).status().code(), StatusCode::kInvalidArgument);
  auto q2 = ParseQueryTemplate("SELECT p.* FROM profiles p WHERE p.ghost = <g>");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(AnalyzeTemplate(catalog, *q2).status().code(), StatusCode::kInvalidArgument);
}

TEST(AnalyzerTest, SymmetricOrSumsBranches) {
  Catalog catalog = SocialCatalog(5000);
  auto q = ParseQueryTemplate(
      "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
      "WHERE f.f1 = <u> OR f.f2 = <u> ORDER BY p.bday");
  ASSERT_TRUE(q.ok());
  auto bounds = AnalyzeTemplate(catalog, *q);
  ASSERT_TRUE(bounds.ok()) << bounds.status();
  EXPECT_EQ(bounds->read_rows, 10000);  // both directions
}

// --------------------------------------------------------------- Planner --

TEST(PlannerTest, PointLookupNeedsNoIndex) {
  Catalog catalog = SocialCatalog();
  auto q = ParseQueryTemplate("SELECT p.* FROM profiles p WHERE p.user_id = <u>");
  ASSERT_TRUE(q.ok());
  auto bounds = AnalyzeTemplate(catalog, *q);
  ASSERT_TRUE(bounds.ok());
  auto plan = PlanQuery(catalog, "profile_by_id", *q, *bounds);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->main().shape, QueryShape::kPointLookup);
  EXPECT_TRUE(plan->main().maintenance.empty());
  EXPECT_EQ(plan->main().update_cost, 0);
}

TEST(PlannerTest, SelectionIndexPlanned) {
  Catalog catalog = SocialCatalog();
  auto q = ParseQueryTemplate(
      "SELECT l.* FROM listings l WHERE l.city = <c> ORDER BY l.created DESC LIMIT 50");
  ASSERT_TRUE(q.ok());
  auto bounds = AnalyzeTemplate(catalog, *q);
  ASSERT_TRUE(bounds.ok());
  auto plan = PlanQuery(catalog, "listings_by_city", *q, *bounds);
  ASSERT_TRUE(plan.ok()) << plan.status();
  const IndexPlan& main = plan->main();
  EXPECT_EQ(main.shape, QueryShape::kSelection);
  EXPECT_EQ(main.target_entity, "listings");
  ASSERT_EQ(main.eq_fields.size(), 1u);
  EXPECT_EQ(main.eq_fields[0], "city");
  EXPECT_EQ(main.order_field, "created");
  EXPECT_TRUE(main.descending);
  ASSERT_EQ(main.maintenance.size(), 1u);
  EXPECT_EQ(main.maintenance[0], (MaintenanceEntry{"idx_listings_by_city", "listings", "*"}));
}

TEST(PlannerTest, PaperBirthdayIndexMatchesFigure3) {
  Catalog catalog = SocialCatalog();
  auto q = ParseQueryTemplate(
      "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
      "WHERE f.f1 = <user_id> OR f.f2 = <user_id> ORDER BY p.bday");
  ASSERT_TRUE(q.ok());
  auto bounds = AnalyzeTemplate(catalog, *q);
  ASSERT_TRUE(bounds.ok());
  auto plan = PlanQuery(catalog, "birthday", *q, *bounds);
  ASSERT_TRUE(plan.ok()) << plan.status();
  const IndexPlan& main = plan->main();
  EXPECT_EQ(main.shape, QueryShape::kJoin);
  EXPECT_TRUE(main.symmetric);
  EXPECT_EQ(main.order_field, "bday");
  // Figure 3's rows for the birthday index:
  //   birthday index | profiles   | birthday
  //   birthday index | friendship | *
  ASSERT_EQ(main.maintenance.size(), 2u);
  EXPECT_EQ(main.maintenance[0], (MaintenanceEntry{"idx_birthday", "profiles", "bday"}));
  EXPECT_EQ(main.maintenance[1], (MaintenanceEntry{"idx_birthday", "friendships", "*"}));
  // Plus the shared adjacency ("friend index") helper.
  ASSERT_EQ(plan->plans.size(), 2u);
  EXPECT_EQ(plan->plans[1].shape, QueryShape::kAdjacency);
  EXPECT_EQ(plan->plans[1].name, "adj_friendships");
}

TEST(PlannerTest, FriendsOfFriendsCascadesFromFriendIndex) {
  Catalog catalog = SocialCatalog(300);
  auto q = ParseQueryTemplate(
      "SELECT p.* FROM friendships a JOIN friendships b ON a.f2 = b.f1 "
      "JOIN profiles p ON b.f2 = p.user_id WHERE a.f1 = <user_id>");
  ASSERT_TRUE(q.ok());
  auto bounds = AnalyzeTemplate(catalog, *q);
  ASSERT_TRUE(bounds.ok()) << bounds.status();
  auto plan = PlanQuery(catalog, "fof", *q, *bounds);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->main().shape, QueryShape::kTwoHop);
  // Figure 3's cascade: the fof index updates when the friend index does.
  ASSERT_EQ(plan->main().maintenance.size(), 1u);
  EXPECT_EQ(plan->main().maintenance[0],
            (MaintenanceEntry{"idx_fof", "adj_friendships", "*"}));
}

TEST(PlannerTest, UpdateBudgetRejectsHotTwoHop) {
  Catalog catalog = SocialCatalog(5000);
  auto q = ParseQueryTemplate(
      "SELECT p.* FROM friendships a JOIN friendships b ON a.f2 = b.f1 "
      "JOIN profiles p ON b.f2 = p.user_id WHERE a.f1 = <u>");
  ASSERT_TRUE(q.ok());
  QueryBounds fake_bounds;  // bypass the analyzer read budget for this test
  PlannerConfig config;
  config.max_update_cost = 1000;  // 4*5000 exceeds this
  auto plan = PlanQuery(catalog, "fof", *q, fake_bounds, config);
  EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PlannerTest, RenderMaintenanceTableLooksRight) {
  std::vector<MaintenanceEntry> entries = {
      {"friend index", "friendships", "*"},
      {"birthday index", "profiles", "birthday"},
  };
  std::string table = RenderMaintenanceTable(entries);
  EXPECT_NE(table.find("Index"), std::string::npos);
  EXPECT_NE(table.find("friend index"), std::string::npos);
  EXPECT_NE(table.find("birthday"), std::string::npos);
}

}  // namespace
}  // namespace scads
