// Social network example: loads a generated power-law friendship graph and
// exercises all three of the paper's query shapes — point lookup, the
// symmetric friends-with-birthdays join, and friends-of-friends — plus a
// read-your-writes session.
//
//   $ ./examples/social_network

#include <cstdio>

#include "core/scads.h"
#include "workload/social_graph.h"

using namespace scads;  // NOLINT: example brevity

int main() {
  ScadsOptions options;
  options.initial_nodes = 4;
  options.partitions = 16;
  options.consistency_spec =
      "performance: p99 read < 100ms, availability 99.9%\n"
      "writes: last_write_wins\n"
      "staleness: 10s\n"
      "session: read_your_writes, monotonic_reads\n"
      "durability: 99.9%\n";
  auto db = std::move(Scads::Create(options)).value();

  EntityDef profiles;
  profiles.name = "profiles";
  profiles.fields = {{"user_id", FieldType::kInt64},
                     {"name", FieldType::kString},
                     {"bday", FieldType::kInt64}};
  profiles.key_fields = {"user_id"};
  (void)db->DefineEntity(profiles);
  EntityDef friendships;
  friendships.name = "friendships";
  friendships.fields = {{"f1", FieldType::kInt64}, {"f2", FieldType::kInt64}};
  friendships.key_fields = {"f1", "f2"};
  friendships.fanout_caps["f1"] = 64;
  friendships.fanout_caps["f2"] = 64;
  (void)db->DefineEntity(friendships);

  (void)db->RegisterQuery("profile", "SELECT p.* FROM profiles p WHERE p.user_id = <u>");
  (void)db->RegisterQuery(
      "friend_birthdays",
      "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
      "WHERE f.f1 = <u> OR f.f2 = <u> ORDER BY p.bday LIMIT 10");
  (void)db->RegisterQuery(
      "fof",
      "SELECT p.* FROM friendships a JOIN friendships b ON a.f2 = b.f1 "
      "JOIN profiles p ON b.f2 = p.user_id WHERE a.f1 = <u>");
  if (Status started = db->Start(); !started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }

  // Load a small generated community.
  SocialGraphConfig graph_config;
  graph_config.user_count = 60;
  graph_config.mean_degree = 6;
  graph_config.friend_cap = 64;
  SocialGraph graph = SocialGraph::Generate(graph_config, 7);
  std::printf("graph: %lld users, %lld edges, max degree %lld\n",
              static_cast<long long>(graph.user_count()),
              static_cast<long long>(graph.edge_count()),
              static_cast<long long>(graph.max_degree()));
  for (int64_t u = 0; u < graph.user_count(); ++u) {
    Row row;
    row.SetInt("user_id", u);
    row.SetString("name", "user" + std::to_string(u));
    row.SetInt("bday", 101 + (u * 37) % 1200);
    (void)db->PutRowSync("profiles", row, RequestOptions{});
  }
  for (const auto& [a, b] : graph.Edges()) {
    Row edge;
    edge.SetInt("f1", a);
    edge.SetInt("f2", b);
    (void)db->PutRowSync("friendships", edge, RequestOptions{});
  }
  db->DrainIndexQueue(10 * kMinute);

  int64_t subject = 0;
  for (int64_t u = 0; u < graph.user_count(); ++u) {
    if (graph.Degree(u) > graph.Degree(subject)) subject = u;
  }
  std::printf("\nmost-connected user: user%lld (%lld friends)\n",
              static_cast<long long>(subject), static_cast<long long>(graph.Degree(subject)));

  auto birthdays = db->QuerySync("friend_birthdays", {{"u", Value(subject)}}, RequestOptions{});
  std::printf("next birthdays among friends (limit 10):\n");
  for (const Row& row : *birthdays) {
    std::printf("  %-8s bday=%lld\n", row.GetString("name").c_str(),
                static_cast<long long>(row.GetInt("bday")));
  }

  auto fof = db->QuerySync("fof", {{"u", Value(subject)}}, RequestOptions{});
  std::printf("friends-of-friends: %zu users\n", fof->size());

  // Session guarantee demo: a user must see their own profile edit at once.
  auto session = db->NewSession();
  std::printf("\nsession demo: user%lld renames themselves...\n",
              static_cast<long long>(subject));
  Row renamed;
  renamed.SetInt("user_id", subject);
  renamed.SetString("name", "renamed!");
  renamed.SetInt("bday", 555);
  (void)db->PutRowSync("profiles", renamed, RequestOptions{});
  auto fresh = db->QuerySync("profile", {{"u", Value(subject)}}, RequestOptions{});
  if (fresh.ok() && !fresh->empty()) {
    std::printf("read after write sees: %s\n", (*fresh)[0].GetString("name").c_str());
  }

  std::printf("\nindex maintenance table:\n%s", db->RenderMaintenanceTable().c_str());
  std::printf("update queue: processed=%lld deadline_misses=%lld\n",
              static_cast<long long>(db->update_queue()->processed()),
              static_cast<long long>(db->update_queue()->deadline_misses()));
  return 0;
}
