// Consistency explorer: walks the Figure-4 axes one by one on a live
// deployment — write-conflict policies, the durability planner's
// cost/replication trade-off, and what a network partition does under each
// priority ordering.
//
//   $ ./examples/consistency_explorer

#include <cstdio>

#include "consistency/durability.h"
#include "core/scads.h"

using namespace scads;  // NOLINT: example brevity

namespace {

void DemoWritePolicies() {
  std::printf("=== axis: write consistency ===\n");
  ScadsOptions options;
  options.initial_nodes = 3;
  options.merge_function = [](std::string_view stored, std::string_view incoming) {
    return std::string(stored) + "+" + std::string(incoming);
  };
  options.consistency_spec = "writes: merge\n";
  auto db = std::move(Scads::Create(options)).value();
  (void)db->Start();

  // Two "devices" write the same shopping cart concurrently; the merge
  // function keeps both updates.
  WritePolicy& merge_policy = *db->write_policy();
  Status s1 = InternalError("pending"), s2 = InternalError("pending");
  merge_policy.Put("cart/42", "milk", AckMode::kPrimary, RequestOptions{}, [&](Status s) { s1 = s; });
  merge_policy.Put("cart/42", "eggs", AckMode::kPrimary, RequestOptions{}, [&](Status s) { s2 = s; });
  db->RunFor(2 * kSecond);
  Result<Record> cart(InternalError("pending"));
  db->router()->Get("cart/42", RequestOptions::PrimaryOnly(), [&](Result<Record> r) { cart = std::move(r); });
  db->RunFor(kSecond);
  std::printf("merge policy: two writers -> value '%s' (merges=%lld)\n",
              cart.ok() ? cart->value.c_str() : "?",
              static_cast<long long>(merge_policy.stats().merges_performed));

  // Serializable: a CAS race — one writer must retry.
  WritePolicy serializable(db->router(), WriteConsistency::kSerializable);
  Status a = InternalError("pending"), b = InternalError("pending");
  serializable.Put("doc/1", "draft-a", AckMode::kPrimary, RequestOptions{}, [&](Status s) { a = s; });
  serializable.Put("doc/1", "draft-b", AckMode::kPrimary, RequestOptions{}, [&](Status s) { b = s; });
  db->RunFor(2 * kSecond);
  std::printf("serializable: both committed (a=%s b=%s), conflicts retried=%lld\n",
              a.ToString().c_str(), b.ToString().c_str(),
              static_cast<long long>(serializable.stats().conflicts_retried));
}

void DemoDurabilityPlanning() {
  std::printf("\n=== axis: durability SLA (replication chosen per target) ===\n");
  FailureModel model;  // 30-day MTBF, 10-minute re-replication
  std::printf("%-12s %-4s %-9s %s\n", "target", "rf", "ack", "predicted survival/yr");
  for (double target : {0.9, 0.99, 0.999, 0.99999, 0.9999999}) {
    auto plan = PlanDurability(target, model);
    if (!plan.ok()) {
      std::printf("%-12.7f unreachable: %s\n", target, plan.status().ToString().c_str());
      continue;
    }
    std::printf("%-12.7f %-4d %-9s %.9f\n", target, plan->replication_factor,
                plan->ack_mode == AckMode::kPrimary ? "primary" : "quorum",
                plan->predicted_survival);
  }
  std::printf("(relaxing the SLA for low-value data saves replicas — the paper's\n"
              " 'old comments' cost lever)\n");
}

void DemoPartitionPriorities() {
  std::printf("\n=== axis: priority order under a network partition ===\n");
  for (bool availability_first : {true, false}) {
    ScadsOptions options;
    options.initial_nodes = 2;
    options.consistency_spec = availability_first
                                   ? "staleness: 1s\npriority: availability > staleness\n"
                                   : "staleness: 1s\npriority: staleness > availability\n";
    auto db = std::move(Scads::Create(options)).value();
    (void)db->Start();
    Status put = InternalError("pending");
    db->router()->Put("k", "v", AckMode::kAll, RequestOptions{}, [&](Status s) { put = s; });
    db->RunFor(2 * kSecond);
    // Cut off the primary of k's partition.
    const PartitionInfo& p = db->cluster()->partitions()->ForKey("k");
    db->network()->SetPartitionGroup(p.primary(), 99);
    db->RunFor(2 * kSecond);
    Result<Record> got(InternalError("pending"));
    bool done = false;
    db->staleness()->Get("k", RequestOptions{}, [&](Result<Record> r) {
      got = std::move(r);
      done = true;
    });
    db->RunFor(3 * kSecond);
    std::printf("%s: read during partition -> %s\n",
                availability_first ? "availability-first" : "consistency-first",
                !done                ? "(no answer)"
                : got.ok()           ? ("served '" + got->value + "' (possibly stale)").c_str()
                                     : got.status().ToString().c_str());
  }
}

}  // namespace

int main() {
  DemoWritePolicies();
  DemoDurabilityPlanning();
  DemoPartitionPriorities();
  return 0;
}
