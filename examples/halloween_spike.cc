// Halloween spike example (paper §2.1): "Facebook sees an increase in the
// number of photos posted the day after Halloween."
//
// Runs a write-heavy day with a 6x photo-upload spike, Director enabled:
// watch the fleet grow through the spike and shrink afterwards, and compare
// the bill against never scaling down.
//
//   $ ./examples/halloween_spike

#include <cstdio>

#include "core/scads.h"
#include "workload/driver.h"
#include "workload/traffic.h"

using namespace scads;  // NOLINT: example brevity

int main() {
  ScadsOptions options;
  options.initial_nodes = 4;
  options.partitions = 32;
  options.enable_director = true;
  options.consistency_spec = "performance: p99 read < 100ms, availability 99.9%\n";
  options.node_config.get_service_time = 1000;   // ~1k req/s per node
  options.node_config.put_service_time = 1200;
  options.director_config.control_interval = 30 * kSecond;
  options.director_config.min_nodes = 4;
  options.director_config.default_rate_per_node = 1000;
  options.director_config.scale_down_patience = 6;
  options.director_config.max_step_down = 6;
  auto db = std::move(Scads::Create(options)).value();
  if (Status started = db->Start(); !started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }

  // Nov 1st: diurnal base, plus a 6x upload surge from 10:00 to 20:00.
  TrafficPattern traffic = SpikeTraffic(DiurnalTraffic(4000, 2500), 10 * kHour, 10 * kHour,
                                        6.0, kHour);
  DriverConfig driver_config;
  driver_config.sample_rate = 25;
  driver_config.mean_service_per_request = 1000;
  driver_config.write_fraction = 0.4;  // photo posts are writes
  WorkloadDriver driver(db->loop(), db->cluster(), traffic, driver_config, 99);
  driver.AddOp(WorkloadOp{"view_photo", 0.6, [&](Rng* rng) {
                            std::string key = "photo/" + std::to_string(rng->Uniform(100000));
                            db->router()->Get(key, RequestOptions{}, [](Result<Record>) {});
                          }});
  driver.AddOp(WorkloadOp{"post_photo", 0.4, [&](Rng* rng) {
                            std::string key = "photo/" + std::to_string(rng->Uniform(100000));
                            db->router()->Put(key, "jpeg-bytes", AckMode::kPrimary, RequestOptions{},
                                              [](Status) {});
                          }});
  db->director()->set_offered_rate_probe(
      [&] { return traffic(db->loop()->Now()); });
  driver.Start();

  std::printf("hour  rate(req/s)  fleet  booting  p99(ms)  sla\n");
  for (int hour = 0; hour < 24; ++hour) {
    db->RunFor(kHour);
    const auto& history = db->director()->history();
    const DirectorSnapshot& snap = history.back();
    std::printf("%4d  %11.0f  %5d  %7d  %7.1f  %s\n", hour + 1, snap.observed_rate,
                snap.running, snap.booting,
                static_cast<double>(snap.latency_at_quantile) / kMillisecond,
                snap.sla_ok ? "ok" : "VIOLATION");
  }
  driver.Stop();

  Time now = db->loop()->Now();
  int64_t elastic_cost = db->cloud()->TotalCostMicros(now);
  // Counterfactual: hold the peak fleet all day.
  int peak = 0;
  for (const auto& snap : db->director()->history()) peak = std::max(peak, snap.running);
  int64_t static_cost = static_cast<int64_t>(peak) * 24 *
                        db->cloud()->config().price_per_period_micros;
  std::printf("\npeak fleet: %d nodes\n", peak);
  std::printf("elastic bill (scale up AND down): %s\n", FormatMoneyMicros(elastic_cost).c_str());
  std::printf("static bill (peak-provisioned):   %s\n", FormatMoneyMicros(static_cost).c_str());
  std::printf("saved: %s (%.0f%%)\n", FormatMoneyMicros(static_cost - elastic_cost).c_str(),
              100.0 * static_cast<double>(static_cost - elastic_cost) /
                  static_cast<double>(static_cost));
  return 0;
}
