// Quickstart: the smallest complete SCADS program.
//
// Defines a schema with a fan-out cap, registers bounded queries (one with
// per-template STALENESS/DEADLINE bounds), starts a three-node simulated
// deployment, writes rows, and queries them — including a per-request
// RequestOptions override.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "core/scads.h"

using namespace scads;  // NOLINT: example brevity

int main() {
  // 1. A deployment with default consistency (LWW writes, 10-minute
  //    staleness bound, availability-first). The read cache turns that
  //    staleness slack into saved round trips: reads within the bound are
  //    served from cache, and writes refresh it synchronously.
  ScadsOptions options;
  options.initial_nodes = 3;
  options.cache_config.enabled = true;
  Result<std::unique_ptr<Scads>> created = Scads::Create(options);
  if (!created.ok()) {
    std::fprintf(stderr, "create failed: %s\n", created.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Scads> db = std::move(created).value();

  // 2. Schema: users with a capped friendship edge (the paper's 5,000-
  //    friend rule is what makes joins provably bounded).
  EntityDef profiles;
  profiles.name = "profiles";
  profiles.fields = {{"user_id", FieldType::kInt64},
                     {"name", FieldType::kString},
                     {"bday", FieldType::kInt64}};
  profiles.key_fields = {"user_id"};
  EntityDef friendships;
  friendships.name = "friendships";
  friendships.fields = {{"f1", FieldType::kInt64}, {"f2", FieldType::kInt64}};
  friendships.key_fields = {"f1", "f2"};
  friendships.fanout_caps["f1"] = 5000;
  friendships.fanout_caps["f2"] = 5000;
  (void)db->DefineEntity(profiles);
  (void)db->DefineEntity(friendships);

  // 3. The paper's birthday query. Registration parses, proves the O(K)
  //    bound, and compiles the Figure-3 maintenance table.
  Result<QueryBounds> bounds = db->RegisterQuery(
      "birthday",
      "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
      "WHERE f.f1 = <user_id> OR f.f2 = <user_id> ORDER BY p.bday");
  if (!bounds.ok()) {
    std::fprintf(stderr, "rejected: %s\n", bounds.status().ToString().c_str());
    return 1;
  }
  std::printf("query accepted; worst-case rows touched: %lld\n",
              static_cast<long long>(bounds->read_rows));

  // 3b. Per-template bounds: this profile lookup promises its callers at
  //     most 1s-stale data and sheds with kDeadlineExceeded past 50ms.
  //     (WITH STALENESS looser than the deployment spec is a registration
  //     error — a template cannot weaken the deployment-wide guarantee.)
  Result<QueryBounds> profile_bounds = db->RegisterQuery(
      "profile",
      "SELECT p.* FROM profiles p WHERE p.user_id = <user_id> "
      "WITH STALENESS 1s, DEADLINE 50ms");
  if (!profile_bounds.ok()) {
    std::fprintf(stderr, "rejected: %s\n", profile_bounds.status().ToString().c_str());
    return 1;
  }

  if (Status started = db->Start(); !started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }

  // 4. Data.
  auto profile = [](int64_t id, const char* name, int64_t bday) {
    Row row;
    row.SetInt("user_id", id);
    row.SetString("name", name);
    row.SetInt("bday", bday);
    return row;
  };
  (void)db->PutRowSync("profiles", profile(1, "alice", 615), RequestOptions{});
  (void)db->PutRowSync("profiles", profile(2, "bob", 212), RequestOptions{});
  (void)db->PutRowSync("profiles", profile(3, "carol", 930), RequestOptions{});
  Row edge;
  edge.SetInt("f1", 1);
  edge.SetInt("f2", 2);
  (void)db->PutRowSync("friendships", edge, RequestOptions{});
  edge.SetInt("f2", 3);
  (void)db->PutRowSync("friendships", edge, RequestOptions{});
  db->DrainIndexQueue();  // let asynchronous index maintenance settle

  // 5. Query: one bounded index scan.
  Result<std::vector<Row>> rows = db->QuerySync("birthday", {{"user_id", Value(int64_t{1})}}, RequestOptions{});
  if (!rows.ok()) {
    std::fprintf(stderr, "query failed: %s\n", rows.status().ToString().c_str());
    return 1;
  }
  std::printf("friends of alice by birthday:\n");
  for (const Row& row : *rows) {
    std::printf("  %-8s bday=%lld\n", row.GetString("name").c_str(),
                static_cast<long long>(row.GetInt("bday")));
  }

  // 6. The same query again is answered from the staleness-aware cache.
  rows = db->QuerySync("birthday", {{"user_id", Value(int64_t{1})}}, RequestOptions{});
  if (rows.ok()) {
    std::printf("\nre-query served from cache: point hits=%lld scan hits=%lld\n",
                static_cast<long long>(db->metrics()->CounterValue("cache.point.hits")),
                static_cast<long long>(db->metrics()->CounterValue("cache.scan.hits")));
  }

  // 7. Per-request overrides: the same read, but demanding at most 500ms of
  //    staleness within a 10ms budget. RequestOptions rides on every data-
  //    plane call; unset fields inherit the template's WITH bounds, then
  //    the deployment spec.
  RequestOptions fresh_and_fast;
  fresh_and_fast.max_staleness = 500 * kMillisecond;
  fresh_and_fast.deadline = 10 * kMillisecond;
  Result<std::vector<Row>> bob =
      db->QuerySync("profile", {{"user_id", Value(int64_t{2})}}, fresh_and_fast);
  if (bob.ok() && !bob->empty()) {
    std::printf("\nfresh-and-fast profile read: %s\n", (*bob)[0].GetString("name").c_str());
  } else {
    std::printf("\nfresh-and-fast profile read shed: %s\n", bob.status().ToString().c_str());
  }
  std::printf("\nper-template SLA ledger:\n%s", db->template_sla()->ToString().c_str());

  std::printf("\nindex maintenance table (paper Figure 3):\n%s",
              db->RenderMaintenanceTable().c_str());
  return 0;
}
