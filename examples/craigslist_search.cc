// Craigslist example (paper §2.2): "the fact that a new listing will not
// appear in a search for five minutes is widely understood and considered
// acceptable."
//
// Declares a 5-minute staleness bound, posts listings, and shows that
// (a) city searches are served from a precomputed index with a LIMIT —
// bounded even though a city's listing count is unbounded — and (b) the
// index catches up well inside the declared bound.
//
//   $ ./examples/craigslist_search

#include <cstdio>

#include "core/scads.h"

using namespace scads;  // NOLINT: example brevity

int main() {
  ScadsOptions options;
  options.initial_nodes = 3;
  options.consistency_spec =
      "performance: p99 read < 150ms, availability 99.9%\n"
      "writes: last_write_wins\n"
      "staleness: 5m          # the Craigslist rule\n"
      "durability: 99.99%\n";
  auto db = std::move(Scads::Create(options)).value();

  EntityDef listings;
  listings.name = "listings";
  listings.fields = {{"listing_id", FieldType::kInt64},
                     {"city", FieldType::kString},
                     {"created", FieldType::kInt64},
                     {"title", FieldType::kString}};
  listings.key_fields = {"listing_id"};
  (void)db->DefineEntity(listings);

  // Bounded by LIMIT, not by a fan-out cap: a city can have any number of
  // listings, but a search reads at most 10 index entries.
  auto bounds = db->RegisterQuery(
      "search",
      "SELECT l.* FROM listings l WHERE l.city = <city> ORDER BY l.created DESC LIMIT 10");
  std::printf("search accepted: reads at most %lld rows (bounded by LIMIT: %s)\n",
              static_cast<long long>(bounds->read_rows),
              bounds->bounded_by_limit ? "yes" : "no");

  if (Status started = db->Start(); !started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }

  auto post = [&](int64_t id, const char* city, const char* title) {
    Row row;
    row.SetInt("listing_id", id);
    row.SetString("city", city);
    row.SetInt("created", db->loop()->Now() / kSecond);
    row.SetString("title", title);
    (void)db->PutRowSync("listings", row, RequestOptions{});
  };
  post(1, "sf", "rusty bicycle");
  post(2, "sf", "couch, free, haunted");
  post(3, "la", "surfboard");
  post(4, "sf", "misc cables");

  // Search immediately: the newest post may not be indexed yet — that is
  // the declared, understood behaviour.
  auto immediate = db->QuerySync("search", {{"city", Value(std::string("sf"))}}, RequestOptions{});
  std::printf("\nimmediately after posting: %zu sf results (index may lag)\n",
              immediate.ok() ? immediate->size() : 0);

  // Within the 5-minute bound the index must have caught up.
  db->RunFor(kMinute);
  db->DrainIndexQueue();
  auto settled = db->QuerySync("search", {{"city", Value(std::string("sf"))}}, RequestOptions{});
  std::printf("after 1 simulated minute: %zu sf results:\n", settled->size());
  for (const Row& row : *settled) {
    std::printf("  [%lld] %s\n", static_cast<long long>(row.GetInt("created")),
                row.GetString("title").c_str());
  }
  std::printf("\nupdate queue deadline misses (bound violations): %lld\n",
              static_cast<long long>(db->update_queue()->deadline_misses()));
  std::printf("every index task carried a deadline %s from enqueue\n",
              FormatDuration(db->spec().max_staleness).c_str());
  return 0;
}
