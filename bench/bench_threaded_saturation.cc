// Threaded saturation: latency vs concurrency on the real-threads backend.
//
// N synchronous client threads (each with its own Router + ScadsClient)
// push a 90/10 Get/Put point workload against M storage shards on a
// ThreadedRuntime. Every node service time is a real wall-clock timer, so
// one synchronous client caps out near 1/(service + overhead) ops/s and
// concurrency wins by OVERLAPPING those waits — the classic closed-system
// saturation curve, no CPU parallelism required (this runs on one core).
// Aggregate throughput should scale near-linearly while the shards have
// headroom, then flatten at the fleet's service capacity while p99 grows
// with queueing — which is exactly what the curve this bench emits shows.
//
// Shape checks (reported in BENCH_threaded_saturation.json, and the
// process exits nonzero when they fail):
//  * scaling: aggregate throughput at 8 threads >= 2.5x the 1-thread
//    throughput;
//  * monotone-to-saturation: each point's throughput >= 0.85x the previous
//    point's (rising, then flat — never collapsing);
//  * cache arm: a Zipfian read pass at 8 threads with ONE CacheDirectory
//    (and one ReadCoalescer) shared by every client router must serve a
//    hit-path p50 >= 5x lower than the identical cache-off pass, with
//    byte-identical result digests — the caches may only relocate where a
//    read is served, never change what it returns.

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache_directory.h"
#include "cluster/cluster_state.h"
#include "cluster/coalescer.h"
#include "cluster/node.h"
#include "cluster/partition.h"
#include "cluster/router.h"
#include "common/benchjson.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/request_options.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/scads_client.h"
#include "runtime/threaded_runtime.h"

namespace scads {
namespace {

constexpr int kNodes = 8;
constexpr int kPartitions = 64;
constexpr int kReplication = 1;
constexpr int kKeys = 4096;
constexpr int kThreadCounts[] = {1, 2, 4, 8, 16, 32};
constexpr Duration kWarmup = 60 * kMillisecond;
constexpr Duration kMeasure = 350 * kMillisecond;

// Cache arm: a fixed Zipfian read tape per thread (identical seeds in both
// arms), so cache-on and cache-off observe the same multiset of
// (key, value) pairs and their digests must match byte for byte.
constexpr int kCacheThreads = 8;
constexpr int kCacheOpsPerThread = 4000;
constexpr double kZipfTheta = 0.99;

std::string KeyFor(int i) {
  // 2-byte spread prefix stripes keys across the uniform partition map.
  uint32_t h = static_cast<uint32_t>(i) * 2654435761u;
  std::string key;
  key.push_back(static_cast<char>(h >> 24));
  key.push_back(static_cast<char>(h >> 16));
  return key + "/k" + std::to_string(i);
}

struct Point {
  int threads = 0;
  double ops_per_sec = 0;
  int64_t ops = 0;
  LogHistogram latency;
};

// One deployment reused across all points: nodes keep their data, each
// point spins up its own client threads and routers.
struct Deployment {
  ThreadedRuntime runtime;
  ClusterState cluster;
  std::vector<std::unique_ptr<StorageNode>> nodes;

  Deployment() {
    NodeConfig node_config;
    node_config.watermark_heartbeat = 0;  // rf=1: no idle watermark timers
    std::vector<NodeId> ids;
    for (int i = 0; i < kNodes; ++i) {
      runtime.RegisterDestination(i);
      auto node = std::make_unique<StorageNode>(i, &runtime, &runtime, &cluster, node_config,
                                                1000 + static_cast<uint64_t>(i));
      if (!cluster.AddNode(i, node.get()).ok()) std::abort();
      node->Start();
      nodes.push_back(std::move(node));
      ids.push_back(i);
    }
    auto map = PartitionMap::CreateUniform(kPartitions, ids, kReplication);
    if (!map.ok()) std::abort();
    cluster.set_partitions(std::move(map).value());
  }

  ~Deployment() { runtime.Shutdown(); }
};

Point RunPoint(Deployment& dep, int thread_count) {
  // One Router per client thread: distinct client NodeIds so response
  // deliveries spread over workers, and no cross-thread contention on one
  // router's lock becomes part of what we measure.
  std::vector<std::unique_ptr<Router>> routers;
  for (int t = 0; t < thread_count; ++t) {
    routers.push_back(std::make_unique<Router>(2000 + t, &dep.runtime, &dep.runtime,
                                               &dep.cluster, RouterConfig{},
                                               500 + static_cast<uint64_t>(t)));
  }

  std::atomic<bool> measuring{false};
  std::atomic<bool> stop{false};
  std::vector<int64_t> ops(thread_count, 0);
  std::vector<LogHistogram> latencies(thread_count);
  std::vector<std::thread> threads;
  for (int t = 0; t < thread_count; ++t) {
    threads.emplace_back([&, t] {
      ScadsClient client(routers[t].get());
      Rng rng(7000 + static_cast<uint64_t>(t));
      const Clock* clock = WallClock::Get();
      while (!stop.load(std::memory_order_acquire)) {
        int i = static_cast<int>(rng.Uniform(kKeys));
        bool is_read = rng.Uniform(10) != 0;  // 90/10 read/write
        Time start = clock->Now();
        bool ok;
        if (is_read) {
          ok = client.GetSync(KeyFor(i)).ok();
        } else {
          ok = client.PutSync(KeyFor(i), "v" + std::to_string(i), AckMode::kPrimary).ok();
        }
        if (!ok) continue;  // shed/timeout: not a completed op
        if (measuring.load(std::memory_order_acquire)) {
          latencies[t].Record(clock->Now() - start);
          ++ops[t];
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::microseconds(kWarmup));
  Time begin = WallClock::Get()->Now();
  measuring.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::microseconds(kMeasure));
  measuring.store(false, std::memory_order_release);
  Time end = WallClock::Get()->Now();
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  Point point;
  point.threads = thread_count;
  for (int t = 0; t < thread_count; ++t) {
    point.ops += ops[t];
    point.latency.Merge(latencies[t]);
  }
  point.ops_per_sec = static_cast<double>(point.ops) * 1e6 / static_cast<double>(end - begin);
  return point;
}

struct ZipfArm {
  int64_t ops = 0;
  LogHistogram latency;
  uint64_t digest = 0;  ///< Wrapping sum of per-thread tape digests.
  bool all_ok = true;
};

uint64_t Fnv(uint64_t h, std::string_view s) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Runs the fixed Zipfian read tapes at kCacheThreads, with every router
// sharing `cache` (may be null = cache-off) and `coalescer`. Per-thread
// digests chain (key, value) in tape order, so equal tapes + equal data
// imply equal digests regardless of thread interleaving.
ZipfArm RunZipfArm(Deployment& dep, CacheDirectory* cache, ReadCoalescer* coalescer) {
  std::vector<std::unique_ptr<Router>> routers;
  for (int t = 0; t < kCacheThreads; ++t) {
    routers.push_back(std::make_unique<Router>(3000 + t, &dep.runtime, &dep.runtime,
                                               &dep.cluster, RouterConfig{},
                                               900 + static_cast<uint64_t>(t)));
    if (cache != nullptr) routers.back()->set_cache(cache);
    routers.back()->set_coalescer(coalescer);
  }

  std::vector<int64_t> ops(kCacheThreads, 0);
  std::vector<LogHistogram> latencies(kCacheThreads);
  std::vector<uint64_t> digests(kCacheThreads, 1469598103934665603ull);
  std::atomic<bool> all_ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < kCacheThreads; ++t) {
    threads.emplace_back([&, t] {
      ScadsClient client(routers[t].get());
      Rng rng(7100 + static_cast<uint64_t>(t));  // same tape in both arms
      const Clock* clock = WallClock::Get();
      for (int op = 0; op < kCacheOpsPerThread; ++op) {
        int i = static_cast<int>(rng.Zipf(kKeys, kZipfTheta));
        std::string key = KeyFor(i);
        Time start = clock->Now();
        Result<Record> result = client.GetSync(key);
        if (!result.ok()) {
          all_ok.store(false, std::memory_order_relaxed);
          continue;
        }
        latencies[t].Record(clock->Now() - start);
        ++ops[t];
        digests[t] = Fnv(Fnv(digests[t], key), result->value);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (auto& router : routers) router->set_coalescer(nullptr);

  ZipfArm arm;
  arm.all_ok = all_ok.load();
  for (int t = 0; t < kCacheThreads; ++t) {
    arm.ops += ops[t];
    arm.latency.Merge(latencies[t]);
    arm.digest += digests[t];  // wrapping sum: order-independent combine
  }
  return arm;
}

}  // namespace
}  // namespace scads

int main() {
  using namespace scads;

  std::printf("=== THREADED SATURATION: closed-loop clients vs %d shards ===\n\n", kNodes);
  std::printf("real worker threads (ThreadedRuntime, %s workers), %d partitions, rf=%d, "
              "%d keys, 90/10 get/put, %lld ms per point\n\n",
              "auto", kPartitions, kReplication, kKeys,
              static_cast<long long>(kMeasure / kMillisecond));

  Deployment dep;
  {
    // Preload every key so reads hit.
    Router loader(1999, &dep.runtime, &dep.runtime, &dep.cluster, RouterConfig{}, 17);
    ScadsClient client(&loader);
    for (int i = 0; i < kKeys; ++i) {
      if (!client.PutSync(KeyFor(i), "v" + std::to_string(i), AckMode::kPrimary).ok()) {
        std::fprintf(stderr, "preload failed at key %d\n", i);
        return 1;
      }
    }
  }

  std::printf("%8s %12s %10s %10s %10s\n", "threads", "ops/s", "p50_us", "p99_us", "scaling");

  BenchJson json("threaded_saturation");
  std::vector<Point> points;
  for (int threads : kThreadCounts) points.push_back(RunPoint(dep, threads));

  double base = points.front().ops_per_sec;
  bool monotone = true;
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    double scaling = p.ops_per_sec / base;
    std::printf("%8d %12.0f %10lld %10lld %9.2fx\n", p.threads, p.ops_per_sec,
                static_cast<long long>(p.latency.ValueAtQuantile(0.5)),
                static_cast<long long>(p.latency.ValueAtQuantile(0.99)), scaling);
    if (i > 0 && p.ops_per_sec < 0.85 * points[i - 1].ops_per_sec) monotone = false;

    json.BeginRow(StrFormat("threads_%d", p.threads));
    json.Add("threads", p.threads);
    json.Add("ops", p.ops);
    json.Add("ops_per_sec", p.ops_per_sec);
    json.Add("p50_us", p.latency.ValueAtQuantile(0.5));
    json.Add("p99_us", p.latency.ValueAtQuantile(0.99));
    json.Add("scaling_vs_1", scaling);
  }

  double scaling_at_8 = 0;
  for (const Point& p : points) {
    if (p.threads == 8) scaling_at_8 = p.ops_per_sec / base;
  }
  bool scaled = scaling_at_8 >= 2.5;

  std::printf("\n1 -> 8 threads: %.2fx aggregate throughput (need >= 2.5x); curve %s\n",
              scaling_at_8, monotone ? "monotone to saturation" : "COLLAPSED");

  // --- Zipfian cache arm: one CacheDirectory + one ReadCoalescer shared by
  // all 8 client routers, against the identical cache-off tapes.
  MetricRegistry cache_metrics;
  CoalescerConfig coalescer_config;
  coalescer_config.enabled = true;
  ReadCoalescer coalescer(&dep.runtime, &dep.runtime, &dep.cluster, coalescer_config);

  ZipfArm off = RunZipfArm(dep, nullptr, &coalescer);

  CacheConfig cache_config;
  cache_config.enabled = true;
  CacheDirectory cache(cache_config, /*staleness_bound=*/0, &cache_metrics);
  ZipfArm on = RunZipfArm(dep, &cache, &coalescer);

  int64_t off_p50 = off.latency.ValueAtQuantile(0.5);
  int64_t on_p50 = on.latency.ValueAtQuantile(0.5);
  double speedup = on_p50 > 0 ? static_cast<double>(off_p50) / static_cast<double>(on_p50)
                              : 0.0;
  int64_t hits = cache_metrics.GetCounter("cache.point.hits")->value();
  int64_t misses = cache_metrics.GetCounter("cache.point.misses")->value();
  double hit_rate = hits + misses > 0
                        ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                        : 0.0;
  bool digests_match = off.digest == on.digest && off.all_ok && on.all_ok;
  bool cache_fast = speedup >= 5.0;

  std::printf("\nzipf cache arm (theta=%.2f, %d threads x %d reads):\n", kZipfTheta,
              kCacheThreads, kCacheOpsPerThread);
  std::printf("  cache-off p50 %lld us p99 %lld us | cache-on p50 %lld us p99 %lld us "
              "(%.1fx, need >= 5x) | hit rate %.1f%% | digests %s\n",
              static_cast<long long>(off_p50),
              static_cast<long long>(off.latency.ValueAtQuantile(0.99)),
              static_cast<long long>(on_p50),
              static_cast<long long>(on.latency.ValueAtQuantile(0.99)), speedup,
              hit_rate * 100.0, digests_match ? "MATCH" : "MISMATCH");

  json.BeginRow("zipf_cache_off");
  json.Add("ops", off.ops);
  json.Add("p50_us", off_p50);
  json.Add("p99_us", off.latency.ValueAtQuantile(0.99));
  json.BeginRow("zipf_cache_on");
  json.Add("ops", on.ops);
  json.Add("p50_us", on_p50);
  json.Add("p99_us", on.latency.ValueAtQuantile(0.99));
  json.Add("hits", hits);
  json.Add("misses", misses);
  json.Add("hit_rate", hit_rate);
  json.Add("speedup_p50", speedup);
  json.Add("digest_check", digests_match ? "PASS" : "FAIL");

  json.BeginRow("shape");
  json.Add("scaling_1_to_8", scaling_at_8);
  json.Add("monotone", monotone ? 1 : 0);
  json.Add("workers", dep.runtime.worker_count());
  Status written = json.Write();
  if (!written.ok()) {
    std::fprintf(stderr, "bench json write failed: %s\n", std::string(written.message()).c_str());
    return 1;
  }

  return (scaled && monotone && cache_fast && digests_match) ? 0 : 1;
}
