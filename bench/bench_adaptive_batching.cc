// ADAPTIVE-BATCH: load-adaptive sub-batch sizing vs fixed batching under
// skewed overload.
//
// One node of a four-node fleet runs at 90% background utilization (the
// skew a viral hot range produces between Director rebalances). A stream
// of 160-key MultiGet fan-outs crosses every node. Fixed batching ships
// each node ONE sub-batch — at the hot node that is a large service lump,
// and at a busy server the queueing delay a request suffers scales with
// the lump it arrives in, so every fan-out eats the hot node's heavy tail.
// Adaptive sizing reads the per-node load signal (ClusterState::NodeLoad)
// and caps the hot node's sub-batches near min_sub_batch while idle nodes
// keep amortized full-size batches: many small lumps have a far lighter
// maximum than one big one, which is exactly the fan-out's completion time.
//
// Shape claim: adaptive sizing cuts fan-out p99 by >= 1.5x (measured well
// above 2x) at equal result correctness, trading a modest message increase
// confined to the overloaded node.

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/node.h"
#include "cluster/router.h"
#include "common/benchjson.h"
#include "common/rng.h"
#include "sim/event_loop.h"
#include "sim/network.h"

using namespace scads;  // NOLINT: benchmark brevity

namespace {

constexpr int kNodes = 4;
constexpr int kKeySpace = 20000;
constexpr int kFanouts = 400;
constexpr size_t kKeysPerFanout = 160;
constexpr Duration kFanoutInterval = 5 * kMillisecond;
constexpr double kHotUtilization = 0.90;

// Spread keys over the 2-byte prefix space CreateUniform partitions on.
std::string KeyOf(uint64_t i) {
  uint32_t spread = static_cast<uint32_t>(i * 2654435761u) & 0xffff;
  std::string key;
  key.push_back(static_cast<char>((spread >> 8) & 0xff));
  key.push_back(static_cast<char>(spread & 0xff));
  key += ":k";
  key += std::to_string(i);
  return key;
}

struct Outcome {
  Duration p50 = 0;
  Duration p99 = 0;
  int64_t reads_ok = 0;
  int64_t reads_failed = 0;
  int64_t values_seen = 0;
  int64_t messages = 0;
  int64_t hot_node_sub_batches = 0;
  int64_t hot_node_sheds = 0;
};

Outcome RunScenario(bool adaptive) {
  EventLoop loop;
  SimNetwork network(&loop, 21);
  ClusterState cluster;
  RouterConfig router_config;
  // Long timeout: this scenario studies queueing latency, not failover.
  router_config.request_timeout = 2 * kSecond;
  router_config.adaptive_batch.enabled = adaptive;
  Router router(1 << 20, &loop, &network, &cluster, router_config, 22);

  NodeConfig node_config;
  node_config.watermark_heartbeat = 0;  // rf=1: no replication streams
  std::map<NodeId, std::unique_ptr<StorageNode>> nodes;
  std::vector<NodeId> ids;
  for (NodeId id = 1; id <= kNodes; ++id) {
    nodes[id] = std::make_unique<StorageNode>(id, &loop, &network, &cluster, node_config,
                                              100 + static_cast<uint64_t>(id));
    (void)cluster.AddNode(id, nodes[id].get());
    ids.push_back(id);
  }
  cluster.set_partitions(std::move(PartitionMap::CreateUniform(64, ids, 1)).value());

  // Seed every key directly into its primary's engine (setup, not traffic).
  for (int i = 0; i < kKeySpace; ++i) {
    std::string key = KeyOf(static_cast<uint64_t>(i));
    NodeId primary = cluster.partitions()->ForKey(key).primary();
    (void)cluster.GetNode(primary)->engine()->Put(key, "v" + std::to_string(i),
                                                  Version{1, 0});
  }

  // The skew: one node saturated by unsampled background traffic.
  const NodeId hot = 1;
  nodes[hot]->SetBackgroundLoad(kHotUtilization, 0);

  // Identical key sequences across both runs (same seed, same draw order).
  Rng rng(23);
  Outcome outcome;
  int64_t hot_messages_before = network.sent_to(hot);
  for (int f = 0; f < kFanouts; ++f) {
    Time at = static_cast<Time>(f) * kFanoutInterval;
    std::vector<std::string> keys;
    keys.reserve(kKeysPerFanout);
    for (size_t k = 0; k < kKeysPerFanout; ++k) {
      keys.push_back(KeyOf(rng.Uniform(kKeySpace)));
    }
    loop.ScheduleAt(at, [&router, &outcome, keys = std::move(keys)] {
      router.MultiGet(keys, RequestOptions{},
                      [&outcome](std::vector<Result<Record>> results) {
                        for (const Result<Record>& r : results) {
                          if (r.ok()) ++outcome.values_seen;
                        }
                      });
    });
  }
  loop.RunFor(static_cast<Duration>(kFanouts) * kFanoutInterval + 10 * kSecond);

  RouterWindow window = router.TakeWindow();
  outcome.p50 = window.read_latency.ValueAtQuantile(0.50);
  outcome.p99 = window.read_latency.ValueAtQuantile(0.99);
  outcome.reads_ok = window.reads_ok;
  outcome.reads_failed = window.reads_failed;
  outcome.messages = network.sent_count();
  outcome.hot_node_sub_batches = network.sent_to(hot) - hot_messages_before;
  outcome.hot_node_sheds = nodes[hot]->stats().ops_shed;
  return outcome;
}

void PrintRow(const char* label, const Outcome& o) {
  std::printf("%-10s %9s %9s %9lld %7lld %9lld %11lld\n", label,
              FormatDuration(o.p50).c_str(), FormatDuration(o.p99).c_str(),
              static_cast<long long>(o.reads_ok), static_cast<long long>(o.reads_failed),
              static_cast<long long>(o.messages),
              static_cast<long long>(o.hot_node_sub_batches));
}

}  // namespace

int main() {
  std::printf("=== ADAPTIVE-BATCH: load-adaptive sub-batch sizing under skew ===\n\n");
  std::printf("fleet: %d nodes, node %d at %.0f%% background utilization;\n", kNodes, 1,
              100.0 * kHotUtilization);
  std::printf("traffic: %d MultiGets of %zu keys, one per %s.\n\n", kFanouts, kKeysPerFanout,
              FormatDuration(kFanoutInterval).c_str());

  Outcome fixed = RunScenario(/*adaptive=*/false);
  Outcome adaptive = RunScenario(/*adaptive=*/true);

  std::printf("%-10s %9s %9s %9s %7s %9s %11s\n", "mode", "p50", "p99", "reads_ok", "failed",
              "messages", "hot_batches");
  PrintRow("fixed", fixed);
  PrintRow("adaptive", adaptive);

  double speedup = adaptive.p99 > 0
                       ? static_cast<double>(fixed.p99) / static_cast<double>(adaptive.p99)
                       : 0.0;
  std::printf("\nfixed ships the hot node one big service lump per fan-out; adaptive\n"
              "caps its sub-batches near min_sub_batch, so the fan-out completion\n"
              "tail tracks max-of-small-lumps instead of one heavy draw.\n");
  std::printf("p99 %s -> %s (%.1fx), identical results: %s\n",
              FormatDuration(fixed.p99).c_str(), FormatDuration(adaptive.p99).c_str(), speedup,
              fixed.values_seen == adaptive.values_seen ? "yes" : "NO");

  bool shape_holds = speedup >= 1.5 && fixed.values_seen == adaptive.values_seen &&
                     adaptive.reads_failed == 0 && fixed.reads_failed == 0;
  std::printf("shape check (adaptive p99 >= 1.5x better, equal results, no failures): %s\n",
              shape_holds ? "PASS" : "FAIL");

  BenchJson json("adaptive_batching");
  for (const auto& [label, o] :
       {std::pair<const char*, const Outcome&>{"fixed", fixed}, {"adaptive", adaptive}}) {
    json.BeginRow(label);
    json.Add("p50_us", o.p50);
    json.Add("p99_us", o.p99);
    json.Add("reads_ok", o.reads_ok);
    json.Add("reads_failed", o.reads_failed);
    json.Add("messages", o.messages);
    json.Add("hot_node_sub_batches", o.hot_node_sub_batches);
    json.Add("hot_node_sheds", o.hot_node_sheds);
  }
  json.BeginRow("summary");
  json.Add("p99_speedup", speedup);
  json.Add("shape_check", shape_holds ? "PASS" : "FAIL");
  (void)json.Write();
  return shape_holds ? 0 : 1;
}
