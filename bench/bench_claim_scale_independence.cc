// CLAIM-SI: the paper's central claim (§1.1, §2.1) — *data scale
// independence*: "the response time for any given query must be invariant
// with respect to the number of users in the system."
//
// Sweep the user count, keep per-user data constant (10 friends each), and
// measure the same logical query ("friends by birthday") three ways:
//   * SCADS — one bounded precomputed-index scan;
//   * ad-hoc SQL baseline — no index: full friendship-table scan for the
//     reverse edge direction (cost grows with the user base);
//   * plain-KV baseline — app-side join, one round trip per friend
//     (bounded but paying K network RTTs).
// Expected shape: SCADS flat; ad-hoc linear in users; app-side flat but a
// constant factor above SCADS.

#include <cstdio>
#include <string>

#include "baseline/adhoc.h"
#include "baseline/appside.h"
#include "core/scads.h"
#include "workload/social_graph.h"
#include "common/benchjson.h"

using namespace scads;  // NOLINT: benchmark brevity

namespace {

struct Sample {
  int64_t users = 0;
  double scads_ms = 0;
  double adhoc_ms = 0;
  double appside_ms = 0;
  int64_t adhoc_rows_scanned = 0;
};

Sample RunAtScale(int64_t users) {
  ScadsOptions options;
  options.initial_nodes = 4;
  options.partitions = 16;
  options.consistency_spec = "staleness: 30s\n";
  auto db = std::move(Scads::Create(options)).value();

  EntityDef profiles;
  profiles.name = "profiles";
  profiles.fields = {{"user_id", FieldType::kInt64},
                     {"name", FieldType::kString},
                     {"bday", FieldType::kInt64}};
  profiles.key_fields = {"user_id"};
  (void)db->DefineEntity(profiles);
  EntityDef friendships;
  friendships.name = "friendships";
  friendships.fields = {{"f1", FieldType::kInt64}, {"f2", FieldType::kInt64}};
  friendships.key_fields = {"f1", "f2"};
  friendships.fanout_caps["f1"] = 50;
  friendships.fanout_caps["f2"] = 50;
  (void)db->DefineEntity(friendships);
  (void)db->RegisterQuery("birthday",
                          "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
                          "WHERE f.f1 = <u> OR f.f2 = <u> ORDER BY p.bday");
  (void)db->Start();

  // Per-user data is constant: ~10 friends regardless of population.
  SocialGraphConfig graph_config;
  graph_config.user_count = users;
  graph_config.mean_degree = 10;
  graph_config.friend_cap = 50;
  SocialGraph graph = SocialGraph::Generate(graph_config, 17);
  for (int64_t u = 0; u < users; ++u) {
    Row row;
    row.SetInt("user_id", u);
    row.SetString("name", "u" + std::to_string(u));
    row.SetInt("bday", 1 + (u * 97) % 1300);
    (void)db->PutRowSync("profiles", row, RequestOptions{});
  }
  AppSideJoinClient appside(db->router(), &db->catalog());
  for (const auto& [a, b] : graph.Edges()) {
    Row edge;
    edge.SetInt("f1", a);
    edge.SetInt("f2", b);
    (void)db->PutRowSync("friendships", edge, RequestOptions{});
  }
  // Denormalized friend lists for the KV baseline.
  const int64_t subject = users / 2;
  {
    std::vector<int64_t> list = graph.Friends(subject);
    Status stored = InternalError("pending");
    appside.StoreFriendList(subject, list, [&](Status s) { stored = s; });
    db->RunFor(kSecond);
  }
  db->DrainIndexQueue(30 * kMinute);

  Sample sample;
  sample.users = users;
  auto time_one = [&](std::function<void(std::function<void()>)> op) {
    Time start = db->loop()->Now();
    bool done = false;
    op([&] { done = true; });
    while (!done) db->RunFor(10 * kMillisecond);
    return static_cast<double>(db->loop()->Now() - start) / kMillisecond;
  };

  // Average 3 executions each.
  double scads_total = 0, adhoc_total = 0, appside_total = 0;
  AdHocExecutor adhoc(db->router(), db->cluster(), &db->catalog());
  for (int i = 0; i < 3; ++i) {
    scads_total += time_one([&](std::function<void()> done) {
      db->Query("birthday", {{"u", Value(subject)}}, RequestOptions{},
                [done](Result<std::vector<Row>>) { done(); });
    });
    adhoc_total += time_one([&](std::function<void()> done) {
      adhoc.FriendsByBirthday(subject, [done](Result<std::vector<Row>>) { done(); });
    });
    appside_total += time_one([&](std::function<void()> done) {
      appside.FriendsByBirthday(subject, [done](Result<std::vector<Row>>) { done(); });
    });
  }
  sample.scads_ms = scads_total / 3;
  sample.adhoc_ms = adhoc_total / 3;
  sample.appside_ms = appside_total / 3;
  sample.adhoc_rows_scanned = adhoc.rows_scanned() / 3;
  return sample;
}

}  // namespace

int main() {
  BenchJson json("claim_scale_independence");
  std::printf("=== CLAIM-SI: scale independence — query cost vs. user count ===\n\n");
  std::printf("%8s %12s %12s %12s %18s\n", "users", "scads(ms)", "adhoc(ms)", "appside(ms)",
              "adhoc rows scanned");
  std::vector<Sample> samples;
  for (int64_t users : {500, 1000, 2000, 4000, 8000}) {
    Sample s = RunAtScale(users);
    samples.push_back(s);
    std::printf("%8lld %12.2f %12.2f %12.2f %18lld\n", static_cast<long long>(s.users),
                s.scads_ms, s.adhoc_ms, s.appside_ms,
                static_cast<long long>(s.adhoc_rows_scanned));
    json.BeginRow("users_" + std::to_string(users));
    json.Add("users", s.users);
    json.Add("scads_ms", s.scads_ms);
    json.Add("adhoc_ms", s.adhoc_ms);
    json.Add("appside_ms", s.appside_ms);
    json.Add("adhoc_rows_scanned", s.adhoc_rows_scanned);
  }
  const Sample& first = samples.front();
  const Sample& last = samples.back();
  double scads_growth = last.scads_ms / std::max(0.01, first.scads_ms);
  double adhoc_growth = last.adhoc_ms / std::max(0.01, first.adhoc_ms);
  std::printf("\nusers grew %.0fx:\n", static_cast<double>(last.users) / first.users);
  std::printf("  SCADS latency grew   %.2fx  (scale-independent: ~1x expected)\n", scads_growth);
  std::printf("  ad-hoc latency grew  %.2fx  (linear in users expected)\n", adhoc_growth);
  std::printf("  ad-hoc rows scanned grew %.1fx\n",
              static_cast<double>(last.adhoc_rows_scanned) /
                  std::max<int64_t>(1, first.adhoc_rows_scanned));
  bool shape_holds = scads_growth < 2.0 && adhoc_growth > 4.0;
  std::printf("\nshape check (SCADS flat <2x, ad-hoc grows >4x): %s\n",
              shape_holds ? "PASS" : "FAIL");
  json.BeginRow("summary");
  json.Add("scads_growth", scads_growth);
  json.Add("adhoc_growth", adhoc_growth);
  json.Add("shape_check", shape_holds ? "PASS" : "FAIL");
  (void)json.Write();
  return shape_holds ? 0 : 1;
}
