// MICRO: google-benchmark microbenchmarks for the hot substrate paths —
// storage engine point ops and scans, skiplist, WAL framing, histogram
// recording, RNG draws, and event-loop dispatch. These run on wall-clock
// time (no simulation) and justify the service-time constants used by the
// simulator's node model.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/benchjson.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "sim/event_loop.h"
#include "storage/codec.h"
#include "storage/engine.h"
#include "storage/skiplist.h"
#include "storage/wal.h"

namespace scads {
namespace {

std::string KeyOf(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user:%012llu", static_cast<unsigned long long>(i));
  return buf;
}

void BM_EnginePut(benchmark::State& state) {
  StorageEngine engine;
  Rng rng(1);
  Time ts = 1;
  for (auto _ : state) {
    std::string key = KeyOf(rng.Uniform(100000));
    benchmark::DoNotOptimize(engine.Put(key, "value-payload-64-bytes.....", Version{ts++, 0}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnginePut);

void BM_EngineGetHit(benchmark::State& state) {
  StorageEngine engine;
  for (uint64_t i = 0; i < 100000; ++i) {
    (void)engine.Put(KeyOf(i), "value", Version{static_cast<Time>(i + 1), 0});
  }
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Get(KeyOf(rng.Uniform(100000))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineGetHit);

void BM_EngineGetMiss(benchmark::State& state) {
  StorageEngine engine;
  for (uint64_t i = 0; i < 10000; ++i) {
    (void)engine.Put(KeyOf(i), "value", Version{static_cast<Time>(i + 1), 0});
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Get(KeyOf(1000000 + rng.Uniform(100000))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineGetMiss);

void BM_EngineScan(benchmark::State& state) {
  StorageEngine engine;
  for (uint64_t i = 0; i < 100000; ++i) {
    (void)engine.Put(KeyOf(i), "value", Version{static_cast<Time>(i + 1), 0});
  }
  Rng rng(4);
  size_t rows = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    std::string start = KeyOf(rng.Uniform(90000));
    benchmark::DoNotOptimize(engine.Scan(start, "", rows));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineScan)->Arg(10)->Arg(100)->Arg(1000);

void BM_SkipListInsert(benchmark::State& state) {
  SkipList list(1);
  Rng rng(5);
  bool created;
  for (auto _ : state) {
    SkipList::Payload* payload = list.FindOrCreate(KeyOf(rng.Next()), &created);
    benchmark::DoNotOptimize(payload);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipListInsert);

void BM_WalAppend(benchmark::State& state) {
  MemoryWalSink sink;
  WalWriter writer(&sink);
  WalRecord record;
  record.key = "user:000000001234";
  record.value = std::string(64, 'v');
  record.version = Version{1, 0};
  for (auto _ : state) {
    record.version.timestamp++;
    benchmark::DoNotOptimize(writer.Append(record));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(record.key.size() + record.value.size()));
}
BENCHMARK(BM_WalAppend);

void BM_Crc32c(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096);

void BM_HistogramRecord(benchmark::State& state) {
  LogHistogram histogram;
  Rng rng(6);
  for (auto _ : state) {
    histogram.Record(static_cast<int64_t>(rng.Exponential(10000)));
  }
  benchmark::DoNotOptimize(histogram.ValueAtQuantile(0.99));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_RngZipf(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Zipf(1000000, 0.99));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngZipf);

void BM_EventLoopDispatch(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    EventLoop loop;
    int counter = 0;
    for (int i = 0; i < 1000; ++i) {
      loop.ScheduleAt(i, [&counter] { ++counter; });
    }
    state.ResumeTiming();
    loop.RunAll();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopDispatch);

// benchmark <= 1.7 reports failures via Run::error_occurred; 1.8+ replaced
// it with Run::skipped. Probe the member in a dependent context so both
// versions compile.
template <typename RunT>
bool RunWasSkipped(const RunT& run) {
  if constexpr (requires { run.skipped; }) {
    return static_cast<bool>(run.skipped);
  } else {
    return run.error_occurred;
  }
}

// Console output as usual, plus each run collected into BENCH_micro_engine
// .json so CI can diff the substrate microbenchmarks like every other
// bench. These are wall-clock timings (the only non-simulated bench), so
// the CI regression gate treats them as informational, not gated.
class JsonExportReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonExportReporter(BenchJson* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (RunWasSkipped(run)) continue;
      json_->BeginRow(run.benchmark_name());
      json_->Add("real_time_per_iter_ns", run.GetAdjustedRealTime());
      json_->Add("cpu_time_per_iter_ns", run.GetAdjustedCPUTime());
      json_->Add("iterations", static_cast<int64_t>(run.iterations));
      for (const char* counter : {"items_per_second", "bytes_per_second"}) {
        auto it = run.counters.find(counter);
        if (it != run.counters.end()) json_->Add(counter, static_cast<double>(it->second));
      }
    }
  }

 private:
  BenchJson* json_;
};

}  // namespace
}  // namespace scads

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  scads::BenchJson json("micro_engine");
  scads::JsonExportReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  (void)json.Write();
  return 0;
}
