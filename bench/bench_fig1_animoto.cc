// FIG-1: reproduces paper Figure 1 — "Animoto's viral growth caused them to
// go from tens of servers to 3400+ in only three days."
//
// A logistic viral-growth traffic curve runs for 72 simulated hours against
// a Director-managed fleet starting at 50 nodes. The output is the
// figure's content as a time series: offered rate, fleet size, and SLA
// compliance. The reproduction claim is the *shape*: tens of servers ->
// thousands within three days, SLA held throughout the ramp.

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include "cluster/cluster_state.h"
#include "common/benchjson.h"
#include "cluster/node.h"
#include "cluster/rebalancer.h"
#include "cluster/router.h"
#include "director/director.h"
#include "sim/cloud.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "workload/driver.h"
#include "workload/traffic.h"

using namespace scads;  // NOLINT: benchmark brevity

int main() {
  std::printf("=== FIG-1: Animoto viral growth, 72 simulated hours ===\n\n");

  EventLoop loop;
  SimNetwork network(&loop, 1);
  CloudConfig cloud_config;
  cloud_config.boot_delay_mean = 90 * kSecond;
  cloud_config.boot_delay_jitter = 30 * kSecond;
  SimCloud cloud(&loop, 2, cloud_config);
  ClusterState cluster;
  Router router(1 << 20, &loop, &network, &cluster, RouterConfig{}, 3);
  Rebalancer rebalancer(&loop, &network, &cluster);

  std::map<NodeId, std::unique_ptr<StorageNode>> nodes;
  NodeConfig node_config;
  node_config.watermark_heartbeat = 0;  // rf=1 fleet: no replication streams
  node_config.get_service_time = 1000;  // 2008-era node: ~1k req/s capacity
  node_config.put_service_time = 1200;
  auto factory = [&](NodeId id) -> StorageNode* {
    auto node = std::make_unique<StorageNode>(id, &loop, &network, &cluster, node_config,
                                              1000 + static_cast<uint64_t>(id));
    StorageNode* raw = node.get();
    nodes[id] = std::move(node);
    return raw;
  };

  DirectorConfig director_config;
  director_config.min_nodes = 50;  // "tens of servers"
  director_config.control_interval = kMinute;
  director_config.forecast_lead = 5 * kMinute;
  director_config.default_rate_per_node = 1000;
  director_config.target_utilization = 0.65;
  director_config.scale_down_patience = 10;
  director_config.max_step_up = 600;
  Director director(&loop, &cloud, &cluster, &rebalancer, {&router}, director_config, factory);

  // Viral growth: ~40k req/s (about 50 busy servers) to 3.3M req/s
  // (about 3400 servers at ~1k req/s each).
  TrafficPattern traffic = ViralGrowthTraffic(40'000, 3'300'000, 36 * kHour, 7 * kHour);
  DriverConfig driver_config;
  driver_config.tick = 30 * kSecond;
  driver_config.sample_rate = 5;  // latency probes
  driver_config.mean_service_per_request = 1000;
  WorkloadDriver driver(&loop, &cluster, traffic, driver_config, 7);
  driver.AddOp(WorkloadOp{"get", 1.0, [&](Rng* rng) {
                            std::string key = "k" + std::to_string(rng->Uniform(1000000));
                            router.Get(key, RequestOptions{}, [](Result<Record>) {});
                          }});
  director.set_offered_rate_probe([&] { return traffic(loop.Now()); });

  director.Start();
  loop.RunFor(3 * kMinute);  // initial fleet boots
  {
    std::vector<NodeId> ids = cluster.AliveNodes();
    auto map = PartitionMap::CreateUniform(256, ids, 1);
    cluster.set_partitions(std::move(map).value());
  }
  driver.Start();

  std::printf("%5s %14s %7s %8s %9s %5s\n", "hour", "rate(req/s)", "fleet", "booting",
              "p99(ms)", "sla");
  int violation_windows = 0, total_windows = 0;
  size_t history_cursor = 0;
  for (int hour = 0; hour <= 72; hour += 2) {
    if (hour > 0) loop.RunFor(2 * kHour);
    const auto& history = director.history();
    for (; history_cursor < history.size(); ++history_cursor) {
      ++total_windows;
      if (!history[history_cursor].sla_ok) ++violation_windows;
    }
    if (history.empty()) continue;
    const DirectorSnapshot& snap = history.back();
    std::printf("%5d %14.0f %7d %8d %9.1f %5s\n", hour, snap.observed_rate, snap.running,
                snap.booting, static_cast<double>(snap.latency_at_quantile) / kMillisecond,
                snap.sla_ok ? "ok" : "VIOL");
  }
  driver.Stop();
  director.Stop();

  int peak = 0;
  for (const auto& snap : director.history()) peak = std::max(peak, snap.running);
  std::printf("\npaper:    ~50 -> 3400+ servers in 3 days (RightScale/Animoto)\n");
  std::printf("measured: 50 -> %d servers (peak) in 72 simulated hours\n", peak);
  std::printf("SLA violation windows: %d / %d (%.2f%%)\n", violation_windows, total_windows,
              total_windows == 0 ? 0.0 : 100.0 * violation_windows / total_windows);
  std::printf("scale-up actions: %lld, machine-hours billed: %lld, bill: %s\n",
              static_cast<long long>(director.scale_ups()),
              static_cast<long long>(cloud.TotalBilledPeriods(loop.Now())),
              FormatMoneyMicros(cloud.TotalCostMicros(loop.Now())).c_str());
  bool shape_holds = peak >= 3000;
  std::printf("shape check (peak >= 3000 nodes): %s\n", shape_holds ? "PASS" : "FAIL");
  BenchJson json("fig1_animoto");
  json.BeginRow("summary");
  json.Add("peak_fleet", peak);
  json.Add("sla_violation_windows", violation_windows);
  json.Add("total_windows", total_windows);
  json.Add("scale_ups", director.scale_ups());
  json.Add("machine_hours_billed", cloud.TotalBilledPeriods(loop.Now()));
  json.Add("bill_micros", cloud.TotalCostMicros(loop.Now()));
  json.Add("shape_check", shape_holds ? "PASS" : "FAIL");
  (void)json.Write();
  return shape_holds ? 0 : 1;
}
