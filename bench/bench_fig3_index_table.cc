// FIG-3: reproduces paper Figure 3 — "Table of typical index update
// operations for social network."
//
// Registers the paper's queries (friends, friends-of-friends, friends with
// upcoming birthdays) and prints the compiled maintenance table; the run
// then *exercises* each row of the table — a friendship write, a profile
// birthday change — and reports the cascade fan-out, verifying each trigger
// does bounded work.

#include <cstdio>

#include "common/benchjson.h"
#include "core/scads.h"

using namespace scads;  // NOLINT: benchmark brevity

int main() {
  std::printf("=== FIG-3: index maintenance table for the social network ===\n\n");

  ScadsOptions options;
  options.initial_nodes = 3;
  options.partitions = 8;
  options.consistency_spec = "staleness: 10s\n";
  auto db = std::move(Scads::Create(options)).value();

  EntityDef profiles;
  profiles.name = "profiles";
  profiles.fields = {{"user_id", FieldType::kInt64},
                     {"name", FieldType::kString},
                     {"birthday", FieldType::kInt64}};
  profiles.key_fields = {"user_id"};
  (void)db->DefineEntity(profiles);
  EntityDef friendships;
  friendships.name = "friendships";
  friendships.fields = {{"f1", FieldType::kInt64}, {"f2", FieldType::kInt64}};
  friendships.key_fields = {"f1", "f2"};
  friendships.fanout_caps["f1"] = 100;
  friendships.fanout_caps["f2"] = 100;
  (void)db->DefineEntity(friendships);

  // The three queries the paper's application needs (§3.2).
  auto check = [](const char* name, const Result<QueryBounds>& result) {
    std::printf("register %-22s -> %s\n", name,
                result.ok() ? "accepted" : result.status().ToString().c_str());
  };
  check("friend_index", db->RegisterQuery(
                            "friend",
                            "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
                            "WHERE f.f1 = <user_id> OR f.f2 = <user_id>"));
  check("friends_of_friends", db->RegisterQuery(
                                  "fof",
                                  "SELECT p.* FROM friendships a JOIN friendships b "
                                  "ON a.f2 = b.f1 JOIN profiles p ON b.f2 = p.user_id "
                                  "WHERE a.f1 = <user_id>"));
  check("birthday_index", db->RegisterQuery(
                              "birthday",
                              "SELECT p.* FROM friendships f JOIN profiles p "
                              "ON f.f2 = p.user_id WHERE f.f1 = <user_id> OR "
                              "f.f2 = <user_id> ORDER BY p.birthday"));
  (void)db->Start();

  std::printf("\npaper Figure 3:\n");
  std::printf("  Index                    Table        Field\n");
  std::printf("  friend index             friendships  *\n");
  std::printf("  friends of friends index friend index *\n");
  std::printf("  birthday index           profiles     birthday\n");
  std::printf("  birthday index           friendship   *\n");
  std::printf("\ncompiled maintenance table (this system):\n%s",
              db->RenderMaintenanceTable().c_str());

  // Exercise the table: build a small clique and measure trigger fan-out.
  for (int64_t i = 1; i <= 12; ++i) {
    Row row;
    row.SetInt("user_id", i);
    row.SetString("name", "u" + std::to_string(i));
    row.SetInt("birthday", 100 + i);
    (void)db->PutRowSync("profiles", row, RequestOptions{});
  }
  for (int64_t i = 2; i <= 11; ++i) {
    Row edge;
    edge.SetInt("f1", 1);
    edge.SetInt("f2", i);
    (void)db->PutRowSync("friendships", edge, RequestOptions{});
  }
  db->DrainIndexQueue();
  const MaintenanceStats& after_edges = db->maintainer()->stats();
  std::printf("\nafter 10 friendship inserts (user 1 gains 10 friends):\n");
  std::printf("  maintenance tasks run: %lld, index entries written: %lld, lookups: %lld\n",
              static_cast<long long>(after_edges.tasks_enqueued),
              static_cast<long long>(after_edges.entries_written),
              static_cast<long long>(after_edges.lookups));

  int64_t entries_before = after_edges.entries_written;
  // Row 3 of Figure 3: a birthday change triggers the birthday index.
  Row updated;
  updated.SetInt("user_id", 5);
  updated.SetString("name", "u5");
  updated.SetInt("birthday", 999);
  (void)db->PutRowSync("profiles", updated, RequestOptions{});
  db->DrainIndexQueue();
  const MaintenanceStats& after_bday = db->maintainer()->stats();
  std::printf("\nafter ONE profile birthday change (user 5, 1 friend):\n");
  std::printf("  additional entries written: %lld (bounded by friend count, not user count)\n",
              static_cast<long long>(after_bday.entries_written - entries_before));
  std::printf("  budget overruns: %lld\n", static_cast<long long>(after_bday.budget_overruns));

  // Validate via query: user 1 must see u5's new birthday last.
  auto rows = db->QuerySync("birthday", {{"user_id", Value(int64_t{1})}}, RequestOptions{});
  bool ordered_ok = rows.ok() && !rows->empty() && rows->back().GetInt("birthday") == 999;
  std::printf("\nbirthday query after cascade: %zu rows, newest birthday last: %s\n",
              rows.ok() ? rows->size() : 0, ordered_ok ? "yes" : "NO");

  bool shape_holds = ordered_ok && after_bday.budget_overruns == 0;
  std::printf("shape check (Figure-3 rows present, cascade bounded, query sees it): %s\n",
              shape_holds ? "PASS" : "FAIL");
  BenchJson json("fig3_index_table");
  json.BeginRow("friendship_cascade");
  json.Add("tasks_enqueued", after_edges.tasks_enqueued);
  json.Add("entries_written", entries_before);
  json.Add("lookups", after_edges.lookups);
  json.BeginRow("birthday_change");
  json.Add("additional_entries", after_bday.entries_written - entries_before);
  json.Add("budget_overruns", after_bday.budget_overruns);
  json.BeginRow("summary");
  json.Add("shape_check", shape_holds ? "PASS" : "FAIL");
  (void)json.Write();
  return shape_holds ? 0 : 1;
}
