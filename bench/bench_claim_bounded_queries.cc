// CLAIM-O(K): paper §2.3/§3.2 — the query language admits exactly those
// queries whose reads and updates are provably bounded, and rejects the
// rest *before they reach production*. "A system like Twitter, where users
// can be followed by an unbounded number of users, would not map into our
// system without modification."
//
// Prints the accept/reject matrix for a suite of templates with the
// analyzer's reasoning and the proven bounds.

#include <cstdio>
#include <string>
#include <vector>

#include "query/analyzer.h"
#include "query/parser.h"
#include "query/planner.h"
#include "query/schema.h"
#include "common/benchjson.h"

using namespace scads;  // NOLINT: benchmark brevity

int main() {
  BenchJson json("claim_bounded_queries");
  std::printf("=== CLAIM-O(K): bounded-query admission control ===\n\n");

  Catalog catalog;
  EntityDef profiles;
  profiles.name = "profiles";
  profiles.fields = {{"user_id", FieldType::kInt64},
                     {"name", FieldType::kString},
                     {"bday", FieldType::kInt64}};
  profiles.key_fields = {"user_id"};
  (void)catalog.AddEntity(profiles);

  // Facebook-style friendships: capped both ways (the paper's 5,000 rule).
  EntityDef friendships;
  friendships.name = "friendships";
  friendships.fields = {{"f1", FieldType::kInt64}, {"f2", FieldType::kInt64}};
  friendships.key_fields = {"f1", "f2"};
  friendships.fanout_caps["f1"] = 5000;
  friendships.fanout_caps["f2"] = 5000;
  (void)catalog.AddEntity(friendships);

  // Twitter-style follows: following is capped, followers are NOT.
  EntityDef follows;
  follows.name = "follows";
  follows.fields = {{"follower", FieldType::kInt64}, {"followee", FieldType::kInt64}};
  follows.key_fields = {"follower", "followee"};
  follows.fanout_caps["follower"] = 2000;  // you can follow at most 2000
  (void)catalog.AddEntity(follows);

  EntityDef listings;
  listings.name = "listings";
  listings.fields = {{"listing_id", FieldType::kInt64},
                     {"city", FieldType::kString},
                     {"created", FieldType::kInt64}};
  listings.key_fields = {"listing_id"};
  (void)catalog.AddEntity(listings);

  struct Case {
    const char* name;
    const char* sql;
    bool expect_accept;
  };
  std::vector<Case> cases = {
      {"profile point lookup",
       "SELECT p.* FROM profiles p WHERE p.user_id = <u>", true},
      {"friends (capped edge)",
       "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
       "WHERE f.f1 = <u> OR f.f2 = <u>",
       true},
      {"friend birthdays (paper)",
       "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
       "WHERE f.f1 = <u> OR f.f2 = <u> ORDER BY p.bday",
       true},
      // Subtle: reads here are bounded (you follow <= 2000 people), but the
      // *index maintenance* is not — when a profile changes, every follow
      // edge pointing at it must be touched, and followers are uncapped.
      // The O(K)-update rule (paper §3.2) rejects it.
      {"who-do-I-follow (bounded read, unbounded upkeep)",
       "SELECT p.* FROM follows f JOIN profiles p ON f.followee = p.user_id "
       "WHERE f.follower = <u>",
       false},
      {"my-followers (UNBOUNDED: Twitter case)",
       "SELECT p.* FROM follows f JOIN profiles p ON f.follower = p.user_id "
       "WHERE f.followee = <star>",
       false},
      {"city listings w/ LIMIT",
       "SELECT l.* FROM listings l WHERE l.city = <c> ORDER BY l.created DESC LIMIT 50", true},
      {"city listings w/o LIMIT (unbounded read)",
       "SELECT l.* FROM listings l WHERE l.city = <c> ORDER BY l.created", false},
      {"unanchored scan",
       "SELECT p.* FROM profiles p WHERE p.bday = <b>", false},
      {"friends-of-friends 5000^2 (over budget)",
       "SELECT p.* FROM friendships a JOIN friendships b ON a.f2 = b.f1 "
       "JOIN profiles p ON b.f2 = p.user_id WHERE a.f1 = <u>",
       false},
  };

  std::printf("%-42s %-8s %s\n", "query", "verdict", "bound / reason");
  int correct = 0;
  for (const Case& test_case : cases) {
    json.BeginRow(test_case.name);
    json.Add("expected", test_case.expect_accept ? "ACCEPT" : "REJECT");
    auto ast = ParseQueryTemplate(test_case.sql);
    if (!ast.ok()) {
      std::printf("%-42s %-8s parse error: %s\n", test_case.name, "REJECT",
                  ast.status().ToString().c_str());
      json.Add("verdict", "REJECT");
      correct += !test_case.expect_accept;
      continue;
    }
    auto bounds = AnalyzeTemplate(catalog, *ast);
    if (bounds.ok()) {
      auto plan = PlanQuery(catalog, "q", *ast, *bounds);
      if (plan.ok()) {
        std::printf("%-42s %-8s reads <= %lld rows, update cost <= %lld\n", test_case.name,
                    "ACCEPT", static_cast<long long>(bounds->read_rows),
                    static_cast<long long>(plan->main().update_cost));
        json.Add("verdict", "ACCEPT");
        json.Add("read_rows", bounds->read_rows);
        json.Add("update_cost", plan->main().update_cost);
        correct += test_case.expect_accept;
        continue;
      }
      std::printf("%-42s %-8s %s\n", test_case.name, "REJECT",
                  std::string(plan.status().message()).c_str());
      json.Add("verdict", "REJECT");
      correct += !test_case.expect_accept;
      continue;
    }
    std::printf("%-42s %-8s %s\n", test_case.name, "REJECT",
                std::string(bounds.status().message()).c_str());
    json.Add("verdict", "REJECT");
    correct += !test_case.expect_accept;
  }
  std::printf("\npaper claim: queries are checked against the scaling rules ahead of\n"
              "time; the Twitter follower fan-out cannot be expressed.\n");
  std::printf("verdicts matching expectation: %d / %zu\n", correct, cases.size());
  bool shape_holds = correct == static_cast<int>(cases.size());
  std::printf("shape check: %s\n", shape_holds ? "PASS" : "FAIL");
  json.BeginRow("summary");
  json.Add("correct", correct);
  json.Add("cases", static_cast<int64_t>(cases.size()));
  json.Add("shape_check", shape_holds ? "PASS" : "FAIL");
  (void)json.Write();
  return shape_holds ? 0 : 1;
}
