// CLAIM-LAG: paper §3.3.2 — "the system will maintain a priority queue of
// updates, where the deadline for propagation is used as the priority. Not
// only does the priority queue allow the system to complete important
// updates first..."
//
// A burst of index updates with mixed staleness bounds (10% tight 2-second
// bounds — fresh feeds; 90% loose 5-minute bounds — analytics counters)
// temporarily exceeds the drain rate. The deadline-ordered queue is
// compared against FIFO. Expected shape: deadline ordering keeps the
// tight-bound class inside its deadline; FIFO misses most of them.

#include <cstdio>

#include "common/rng.h"
#include "index/update_queue.h"
#include "sim/event_loop.h"
#include "common/benchjson.h"

using namespace scads;  // NOLINT: benchmark brevity

namespace {

struct Outcome {
  int64_t tight_misses = 0;
  int64_t tight_total = 0;
  int64_t loose_misses = 0;
  int64_t loose_total = 0;
  Duration tight_p99_lag = 0;
};

Outcome RunBurst(QueuePolicy policy) {
  EventLoop loop;
  UpdateQueue queue(&loop, policy);
  Rng rng(77);

  constexpr Duration kTightBound = 2 * kSecond;
  constexpr Duration kLooseBound = 5 * kMinute;
  constexpr Duration kServiceTime = 5 * kMillisecond;  // per update task

  LogHistogram tight_lag;
  Outcome outcome;

  // Burst: 40,000 tasks arrive over 60 seconds (~667/s) while the queue
  // drains at 200/s — a 3x overload that takes minutes to clear.
  int64_t task_count = 40000;
  for (int64_t i = 0; i < task_count; ++i) {
    Time arrival = static_cast<Time>(rng.Uniform(60 * kSecond));
    bool tight = rng.Bernoulli(0.10);
    loop.ScheduleAt(arrival, [&, tight] {
      Time enqueued = loop.Now();
      Duration bound = tight ? kTightBound : kLooseBound;
      queue.Enqueue(enqueued + bound, tight ? "tight" : "loose",
                    [&, tight, enqueued, bound](std::function<void(Status)> done) {
                      loop.ScheduleAfter(kServiceTime, [&, tight, enqueued, bound, done] {
                        Duration lag = loop.Now() - enqueued;
                        if (tight) {
                          tight_lag.Record(lag);
                          ++outcome.tight_total;
                          if (lag > bound) ++outcome.tight_misses;
                        } else {
                          ++outcome.loose_total;
                          if (lag > bound) ++outcome.loose_misses;
                        }
                        done(Status::Ok());
                      });
                    });
    });
  }
  loop.RunUntil(20 * kMinute);
  outcome.tight_p99_lag = tight_lag.ValueAtQuantile(0.99);
  return outcome;
}

}  // namespace

int main() {
  BenchJson json("claim_update_priority");
  std::printf("=== CLAIM-LAG: deadline-priority update queue vs FIFO ===\n\n");
  std::printf("burst: 40k index updates in 60s against a 200/s drain rate;\n");
  std::printf("10%% carry a 2s staleness bound, 90%% a 5min bound.\n\n");

  Outcome deadline = RunBurst(QueuePolicy::kDeadline);
  Outcome fifo = RunBurst(QueuePolicy::kFifo);

  std::printf("%-26s %16s %16s\n", "", "deadline queue", "FIFO queue");
  std::printf("%-26s %15.1f%% %15.1f%%\n", "tight-bound misses",
              100.0 * deadline.tight_misses / std::max<int64_t>(1, deadline.tight_total),
              100.0 * fifo.tight_misses / std::max<int64_t>(1, fifo.tight_total));
  std::printf("%-26s %16s %16s\n", "tight-bound p99 lag",
              FormatDuration(deadline.tight_p99_lag).c_str(),
              FormatDuration(fifo.tight_p99_lag).c_str());
  std::printf("%-26s %15.1f%% %15.1f%%\n", "loose-bound misses",
              100.0 * deadline.loose_misses / std::max<int64_t>(1, deadline.loose_total),
              100.0 * fifo.loose_misses / std::max<int64_t>(1, fifo.loose_total));

  std::printf("\npaper claim: deadline ordering completes important updates first\n"
              "and exposes when the system risks falling behind schedule.\n");
  bool shape_holds = deadline.tight_misses * 10 < fifo.tight_misses &&
                     deadline.loose_misses <= fifo.loose_misses * 2 + 10;
  std::printf("shape check (deadline cuts tight-bound misses >10x without\n"
              "sacrificing the loose class): %s\n",
              shape_holds ? "PASS" : "FAIL");
  for (const auto& [label, outcome] : {std::pair<const char*, const Outcome&>{"deadline", deadline},
                                       {"fifo", fifo}}) {
    json.BeginRow(label);
    json.Add("tight_misses", outcome.tight_misses);
    json.Add("tight_total", outcome.tight_total);
    json.Add("tight_p99_lag_us", outcome.tight_p99_lag);
    json.Add("loose_misses", outcome.loose_misses);
    json.Add("loose_total", outcome.loose_total);
  }
  json.BeginRow("summary");
  json.Add("shape_check", shape_holds ? "PASS" : "FAIL");
  (void)json.Write();
  return shape_holds ? 0 : 1;
}
