// SOCIAL-GRAPH: the feed workload over the bit-packed adjacency store.
//
// Part 1 — codec compactness at scale: a >=1M-edge power-law follow graph
// is encoded through AdjacencyCodec and its total resident bytes compared
// against the naive fixed-width (8 bytes/edge) layout. Claimed shape:
// <= 50% of naive (delta varints over sorted ids land near 1-2 B/edge).
//
// Part 2 — feed serving arms: one --users-scaled graph is seeded into a
// single-node cluster and driven with the social mix (serially-chained
// follows/unfollows/posts so every arm converges to the same store state),
// then a read-only feed storm runs twice per arm (warm-up, then measured):
//
//   cold    RAM engine, no cache, no coalescer
//   warm    RAM engine + staleness-aware cache + cross-router coalescing
//   paged   larger-than-memory engine at ~30% pool budget, no cache
//
// Claimed shape: every arm's measured pass produces the SAME feed digest
// (byte-identical results), warm feed p50 is >= 3x better than cold
// (celebrity hot keys collapse into cache hits), and the paged arm stays
// inside its pool byte budget with zero budget overruns and zero failures.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/coalescer.h"
#include "cluster/node.h"
#include "cluster/router.h"
#include "cache/cache_directory.h"
#include "common/benchjson.h"
#include "common/metrics.h"
#include "graph/adjacency_codec.h"
#include "graph/graph_client.h"
#include "graph/graph_gen.h"
#include "graph/social_workload.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "storage/pagestore/paged_engine.h"

using namespace scads;  // NOLINT: benchmark brevity

namespace {

constexpr int64_t kCodecUsers = 9000;      // x ~140 mean degree => >1M edges
constexpr double kCodecMeanDegree = 140.0;
constexpr int64_t kDefaultUsers = 2500;    // cluster arms (overridable: --users N)
constexpr int64_t kMixedOps = 1200;
constexpr int64_t kFeedPassSize = 400;
constexpr int64_t kPoolBudget = 96 * 1024;  // ~30% of the seeded dataset

struct CodecResult {
  int64_t edges = 0;
  int64_t encoded_bytes = 0;
  int64_t naive_bytes = 0;
};

CodecResult MeasureCodecCompactness() {
  SocialGraphGenConfig config;
  config.users = kCodecUsers;
  config.mean_out_degree = kCodecMeanDegree;
  SocialGraphGen gen(config, 2024);
  CodecResult result;
  for (int64_t u = 0; u < config.users; ++u) {
    std::vector<uint64_t> follows = gen.FollowsOf(u);
    std::string encoded = AdjacencyCodec::Encode(follows);
    // Round-trip spot check while we're here: a compact store that can't
    // decode its own bytes compresses nothing but the truth.
    if (u % 997 == 0) {
      std::vector<uint64_t> decoded;
      if (!AdjacencyCodec::Decode(encoded, &decoded) || decoded != follows) {
        std::fprintf(stderr, "codec round-trip failed for user %lld\n",
                     static_cast<long long>(u));
        std::exit(2);
      }
    }
    result.edges += static_cast<int64_t>(follows.size());
    result.encoded_bytes += static_cast<int64_t>(encoded.size());
    result.naive_bytes += static_cast<int64_t>(AdjacencyCodec::NaiveBytes(follows.size()));
  }
  return result;
}

enum class Arm { kCold, kWarm, kPaged };

const char* ArmName(Arm arm) {
  switch (arm) {
    case Arm::kCold: return "cold";
    case Arm::kWarm: return "warm";
    case Arm::kPaged: return "paged";
  }
  return "?";
}

struct ArmOutcome {
  Duration feed_p50 = 0;
  Duration feed_p99 = 0;
  int64_t feeds_ok = 0;
  int64_t feeds_failed = 0;
  int64_t feed_items = 0;
  uint64_t digest = 0;
  int64_t mutations_failed = 0;
  int64_t cache_hits = 0;
  int64_t resident_peak = 0;
  int64_t budget_overruns = 0;
  int64_t page_faults = 0;
  int64_t pages_prefetched = 0;
};

ArmOutcome RunArm(Arm arm, int64_t users) {
  EventLoop loop;
  SimNetwork network(&loop, 51);
  ClusterState cluster;
  RouterConfig router_config;
  router_config.request_timeout = 2 * kSecond;
  Router router(1 << 20, &loop, &network, &cluster, router_config, 52);

  MetricRegistry cache_metrics;
  std::unique_ptr<CacheDirectory> cache;
  std::unique_ptr<ReadCoalescer> coalescer;
  if (arm == Arm::kWarm) {
    CacheConfig cache_config;
    cache_config.enabled = true;
    cache = std::make_unique<CacheDirectory>(cache_config, /*staleness_bound=*/10 * kSecond,
                                             &cache_metrics);
    router.set_cache(cache.get());
    CoalescerConfig coalescer_config;
    coalescer_config.enabled = true;
    coalescer_config.staleness_bound = 10 * kSecond;
    coalescer = std::make_unique<ReadCoalescer>(&loop, &network, &cluster, coalescer_config);
    router.set_coalescer(coalescer.get());
  }

  NodeConfig node_config;
  node_config.watermark_heartbeat = 0;  // rf=1: no replication streams
  if (arm == Arm::kPaged) {
    node_config.paged_storage.enabled = true;
    node_config.paged_storage.page_bytes = 8 * 1024;
    node_config.paged_storage.buffer_pool_bytes = kPoolBudget;
    node_config.paged_storage.memtable_spill_bytes = 32 * 1024;
  }
  auto node = std::make_unique<StorageNode>(1, &loop, &network, &cluster, node_config, 53);
  (void)cluster.AddNode(1, node.get());
  cluster.set_partitions(std::move(PartitionMap::CreateUniform(64, {1}, 1)).value());

  // Seed the graph straight into the engine (setup, not traffic), then let
  // write-back drain so the first request isn't billed for dataset load.
  SocialGraphGenConfig gen_config;
  gen_config.users = users;
  gen_config.mean_out_degree = 10.0;
  gen_config.initial_posts = 4;
  SocialGraphGen gen(gen_config, 61);
  uint64_t ts_base = 1ull << 40;
  for (int64_t u = 0; u < users; ++u) {
    (void)node->engine()->Put(GraphClient::AdjacencyKey(static_cast<uint64_t>(u)),
                              AdjacencyCodec::Encode(gen.FollowsOf(u)), Version{1, 0});
    std::vector<PostRef> run;
    uint64_t seq = 0;
    for (uint64_t ts : gen.InitialPostTimestamps(u, ts_base)) run.push_back({ts, seq++});
    (void)node->engine()->Put(GraphClient::PostsKey(static_cast<uint64_t>(u)),
                              PostLogCodec::Encode(run), Version{1, 0});
  }
  loop.RunFor(2 * kSecond);
  node->engine()->TakeAccruedIo();

  GraphClient client(ScadsClient{&router});
  SocialWorkloadConfig workload_config;
  workload_config.users = users;
  workload_config.ops = kMixedOps;
  workload_config.post_ts_base = ts_base;
  // Pace the mixed phase below node saturation — including the paged arm,
  // whose per-request fault IO makes it the slowest: the serial mutation
  // chain must land every op in every arm (a shed or timed-out mutation
  // would fork the arms' final store states and break the digest claim).
  // The measured storm stays dense — that overload contrast is what the
  // warm arm's cache is supposed to absorb.
  workload_config.op_interval = 10 * kMillisecond;
  workload_config.feed_pass_interval = 500;  // 0.5ms
  SocialWorkloadDriver driver({&client}, workload_config, 71);

  ArmOutcome outcome;

  // Phase 1 — the mixed social workload. Mutations are serially chained,
  // so every arm ends at the identical store state.
  bool mixed_done = false;
  driver.Run([&] { mixed_done = true; });
  loop.RunFor(60 * kSecond);
  if (!mixed_done) {
    std::fprintf(stderr, "%s: mixed phase did not drain\n", ArmName(arm));
    std::exit(2);
  }
  outcome.mutations_failed = driver.stats().mutations_failed;

  // Phase 2 — read-only feed storm, twice: the first pass warms the cache
  // and buffer pool, the second is measured and digested.
  for (int pass = 1; pass <= 2; ++pass) {
    bool pass_done = false;
    driver.RunFeedPass(kFeedPassSize, pass, [&] { pass_done = true; });
    loop.RunFor(60 * kSecond);
    if (!pass_done) {
      std::fprintf(stderr, "%s: feed pass %d did not drain\n", ArmName(arm), pass);
      std::exit(2);
    }
  }
  const SocialWorkloadStats& stats = driver.stats();
  outcome.feed_p50 = stats.feed_latency.ValueAtQuantile(0.50);
  outcome.feed_p99 = stats.feed_latency.ValueAtQuantile(0.99);
  outcome.feeds_ok = stats.feeds_ok;
  outcome.feeds_failed = stats.feeds_failed;
  outcome.feed_items = stats.feed_items;
  outcome.digest = stats.feed_digest;
  if (arm == Arm::kWarm) {
    outcome.cache_hits = cache_metrics.CounterValue("cache.point.hits");
  }
  if (arm == Arm::kPaged) {
    auto* engine = static_cast<PagedEngine*>(node->engine());
    outcome.resident_peak = static_cast<int64_t>(engine->pool().resident_peak());
    outcome.budget_overruns = engine->metrics().CounterValue("budget_overruns");
    outcome.page_faults = engine->metrics().CounterValue("page_faults");
    outcome.pages_prefetched = engine->metrics().CounterValue("pages_prefetched");
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t users = kDefaultUsers;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--users") == 0) users = std::atoll(argv[i + 1]);
  }

  std::printf("=== SOCIAL-GRAPH: adjacency store + power-law feed workload ===\n\n");

  CodecResult codec = MeasureCodecCompactness();
  double codec_ratio =
      codec.naive_bytes > 0
          ? static_cast<double>(codec.encoded_bytes) / static_cast<double>(codec.naive_bytes)
          : 1.0;
  std::printf("codec: %lld edges, %.2f B/edge encoded vs 8 B/edge naive (%.1f%%)\n\n",
              static_cast<long long>(codec.edges),
              static_cast<double>(codec.encoded_bytes) / static_cast<double>(codec.edges),
              100.0 * codec_ratio);

  std::printf("cluster arms: %lld users, %lld mixed ops, %lld-feed measured storm\n\n",
              static_cast<long long>(users), static_cast<long long>(kMixedOps),
              static_cast<long long>(kFeedPassSize));

  ArmOutcome cold = RunArm(Arm::kCold, users);
  ArmOutcome warm = RunArm(Arm::kWarm, users);
  ArmOutcome paged = RunArm(Arm::kPaged, users);

  std::printf("%-7s %10s %10s %7s %7s %9s %10s %9s\n", "arm", "feed_p50", "feed_p99",
              "ok", "failed", "items", "cache_hit", "peak_B");
  for (const auto& [arm, o] : {std::pair<const char*, const ArmOutcome&>{"cold", cold},
                               {"warm", warm},
                               {"paged", paged}}) {
    std::printf("%-7s %10s %10s %7lld %7lld %9lld %10lld %9lld\n", arm,
                FormatDuration(o.feed_p50).c_str(), FormatDuration(o.feed_p99).c_str(),
                static_cast<long long>(o.feeds_ok), static_cast<long long>(o.feeds_failed),
                static_cast<long long>(o.feed_items), static_cast<long long>(o.cache_hits),
                static_cast<long long>(o.resident_peak));
  }

  double warm_speedup = warm.feed_p50 > 0
                            ? static_cast<double>(cold.feed_p50) /
                                  static_cast<double>(warm.feed_p50)
                            : 0.0;
  std::printf("\nwarm arm serves the celebrity neighborhoods from cache+coalescer\n"
              "(%.1fx feed p50 speedup over cold); paged arm holds %lldB peak against\n"
              "a %lldB pool budget with identical bytes in every feed.\n",
              warm_speedup, static_cast<long long>(paged.resident_peak),
              static_cast<long long>(kPoolBudget));

  bool codec_compact = codec.edges >= 1000000 && codec_ratio <= 0.5;
  bool identical = cold.digest != 0 && cold.digest == warm.digest &&
                   cold.digest == paged.digest;
  bool complete = cold.feeds_failed == 0 && warm.feeds_failed == 0 &&
                  paged.feeds_failed == 0 && cold.mutations_failed == 0 &&
                  warm.mutations_failed == 0 && paged.mutations_failed == 0 &&
                  cold.feeds_ok == kFeedPassSize && warm.feeds_ok == kFeedPassSize &&
                  paged.feeds_ok == kFeedPassSize;
  bool warm_fast = warm_speedup >= 3.0;
  bool bounded = paged.resident_peak > 0 && paged.resident_peak <= kPoolBudget &&
                 paged.budget_overruns == 0;
  bool shape_holds = codec_compact && identical && complete && warm_fast && bounded;
  std::printf("shape check (>=1M edges at <=50%% of naive, byte-identical digests,\n"
              "zero failures, warm p50 >=3x cold, paged peak<=budget): %s\n",
              shape_holds ? "PASS" : "FAIL");

  BenchJson json("social_graph");
  json.BeginRow("codec");
  json.Add("edges", codec.edges);
  json.Add("encoded_bytes", codec.encoded_bytes);
  json.Add("naive_bytes", codec.naive_bytes);
  json.Add("bytes_per_edge", static_cast<double>(codec.encoded_bytes) /
                                 static_cast<double>(codec.edges));
  for (const auto& [arm, o] : {std::pair<const char*, const ArmOutcome&>{"cold", cold},
                               {"warm", warm},
                               {"paged", paged}}) {
    json.BeginRow(arm);
    char digest_hex[32];
    std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                  static_cast<unsigned long long>(o.digest));
    json.Add("feed_digest", digest_hex);
    json.Add("mutations_failed", o.mutations_failed);
    json.Add("feed_p50_us", o.feed_p50);
    json.Add("feed_p99_us", o.feed_p99);
    json.Add("feeds_ok", o.feeds_ok);
    json.Add("feeds_failed", o.feeds_failed);
    json.Add("feed_items", o.feed_items);
    json.Add("cache_hits", o.cache_hits);
    json.Add("resident_peak_bytes", o.resident_peak);
    json.Add("budget_overruns", o.budget_overruns);
    json.Add("page_faults", o.page_faults);
    json.Add("pages_prefetched", o.pages_prefetched);
  }
  json.BeginRow("summary");
  json.Add("users", users);
  json.Add("warm_feed_speedup", warm_speedup);
  json.Add("codec_ratio", codec_ratio);
  json.Add("digest_match", identical ? 1 : 0);
  json.Add("shape_check", shape_holds ? "PASS" : "FAIL");
  (void)json.Write();
  return shape_holds ? 0 : 1;
}
