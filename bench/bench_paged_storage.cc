// PAGED-STORAGE: larger-than-memory paged tier vs the all-RAM engine.
//
// One node holds a ~1.3MB dataset; the paged run gives its buffer pool
// only ~25% of that, so roughly three quarters of the data lives on pages
// behind a fault path. Three phases drive the same keys through a Router
// against both engines: a warm-up that populates the pool with a small hot
// set, a hot phase (reads confined to that set — the pool absorbs them, so
// latency should track the RAM engine), and a cold sweep over the full
// keyspace in shuffled order (every miss pays a page fault, eviction keeps
// residency inside the budget the whole way).
//
// Shape claim (informational, not a gated claim_* bench): the paged run
// returns byte-identical data to the RAM run, hot-set p50 stays within 2x
// of the RAM engine, the cold sweep completes with zero failures, and
// buffer-pool residency never exceeds its byte budget.

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/node.h"
#include "cluster/router.h"
#include "common/benchjson.h"
#include "common/rng.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "storage/pagestore/paged_engine.h"

using namespace scads;  // NOLINT: benchmark brevity

namespace {

constexpr int kKeys = 8000;
constexpr size_t kValueBytes = 120;
constexpr int kHotKeys = 600;
constexpr int kHotReads = 3000;
constexpr Duration kReadInterval = 500;  // us: slower than worst-case service
constexpr int64_t kPoolBytes = 300 * 1024;  // ~25% of the encoded dataset

// Spread keys over the 2-byte prefix space CreateUniform partitions on.
std::string KeyOf(uint64_t i) {
  uint32_t spread = static_cast<uint32_t>(i * 2654435761u) & 0xffff;
  std::string key;
  key.push_back(static_cast<char>((spread >> 8) & 0xff));
  key.push_back(static_cast<char>(spread & 0xff));
  key += ":k";
  key += std::to_string(i);
  return key;
}

std::string ValueOf(uint64_t i) {
  std::string value = "value-" + std::to_string(i) + "-";
  while (value.size() < kValueBytes) value.push_back('p');
  return value;
}

uint64_t Fnv1a(const std::string& bytes, uint64_t h = 14695981039346656037ULL) {
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

struct Phase {
  Duration p50 = 0;
  Duration p99 = 0;
  int64_t reads_ok = 0;
  int64_t reads_failed = 0;
};

struct Outcome {
  Phase hot;
  Phase cold;
  uint64_t digest = 0;  // order-independent sum of per-record hashes
  int64_t page_faults = 0;
  int64_t pages_written_back = 0;
  int64_t pool_evictions = 0;
  int64_t budget_overruns = 0;
  int64_t resident_peak = 0;
  int64_t resident_end = 0;
};

Phase Drain(EventLoop* loop, Router* router, Duration reads, Duration tail) {
  loop->RunFor(reads * kReadInterval + tail);
  RouterWindow window = router->TakeWindow();
  Phase phase;
  phase.p50 = window.read_latency.ValueAtQuantile(0.50);
  phase.p99 = window.read_latency.ValueAtQuantile(0.99);
  phase.reads_ok = window.reads_ok;
  phase.reads_failed = window.reads_failed;
  return phase;
}

Outcome RunScenario(bool paged) {
  EventLoop loop;
  SimNetwork network(&loop, 21);
  ClusterState cluster;
  RouterConfig router_config;
  router_config.request_timeout = 2 * kSecond;
  Router router(1 << 20, &loop, &network, &cluster, router_config, 31);

  NodeConfig node_config;
  node_config.watermark_heartbeat = 0;  // rf=1: no replication streams
  if (paged) {
    node_config.paged_storage.enabled = true;
    node_config.paged_storage.page_bytes = 8 * 1024;
    node_config.paged_storage.buffer_pool_bytes = kPoolBytes;
    node_config.paged_storage.memtable_spill_bytes = 64 * 1024;
  }
  auto node = std::make_unique<StorageNode>(1, &loop, &network, &cluster, node_config, 32);
  (void)cluster.AddNode(1, node.get());
  cluster.set_partitions(std::move(PartitionMap::CreateUniform(64, {1}, 1)).value());

  // Seed directly into the engine (setup, not traffic), then let the
  // write-back loop make the pages durable and drop the accrued IO so the
  // first measured request doesn't get billed for loading the dataset.
  for (uint64_t i = 0; i < kKeys; ++i) {
    (void)node->engine()->Put(KeyOf(i), ValueOf(i), Version{1, 0});
  }
  loop.RunFor(2 * kSecond);
  node->engine()->TakeAccruedIo();

  Rng rng(33);
  Outcome outcome;

  // Warm-up: one pass over the hot set pulls its pages into the pool (the
  // RAM engine is unaffected). Not measured.
  for (int i = 0; i < kHotKeys; ++i) {
    Time at = static_cast<Time>(i) * kReadInterval;
    loop.ScheduleAt(loop.Now() + at,
                    [&router, key = KeyOf(static_cast<uint64_t>(i))] {
                      router.Get(key, RequestOptions{}, [](Result<Record>) {});
                    });
  }
  loop.RunFor(static_cast<Duration>(kHotKeys) * kReadInterval + 100 * kMillisecond);
  (void)router.TakeWindow();

  // Hot phase: reads confined to the pool-resident hot set.
  for (int i = 0; i < kHotReads; ++i) {
    Time at = static_cast<Time>(i) * kReadInterval;
    loop.ScheduleAt(loop.Now() + at, [&router, key = KeyOf(rng.Uniform(kHotKeys))] {
      router.Get(key, RequestOptions{}, [](Result<Record>) {});
    });
  }
  outcome.hot = Drain(&loop, &router, kHotReads, 100 * kMillisecond);

  // Cold sweep: the full keyspace in shuffled order, digesting every byte
  // that comes back. Order-independent digest: completion order is
  // irrelevant, content is everything.
  std::vector<uint64_t> order(kKeys);
  for (int i = 0; i < kKeys; ++i) order[static_cast<size_t>(i)] = static_cast<uint64_t>(i);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.Uniform(i)]);
  }
  for (size_t i = 0; i < order.size(); ++i) {
    Time at = static_cast<Time>(i) * kReadInterval;
    loop.ScheduleAt(loop.Now() + at, [&router, &outcome, key = KeyOf(order[i])] {
      router.Get(key, RequestOptions{}, [&outcome, key](Result<Record> r) {
        if (r.ok()) outcome.digest += Fnv1a(r->value, Fnv1a(key));
      });
    });
  }
  outcome.cold = Drain(&loop, &router, kKeys, 200 * kMillisecond);

  if (paged) {
    auto* engine = static_cast<PagedEngine*>(node->engine());
    outcome.page_faults = engine->metrics().CounterValue("page_faults");
    outcome.pages_written_back = engine->metrics().CounterValue("pages_written_back");
    outcome.pool_evictions = engine->metrics().CounterValue("pool_evictions");
    outcome.budget_overruns = engine->metrics().CounterValue("budget_overruns");
    outcome.resident_peak = static_cast<int64_t>(engine->pool().resident_peak());
    outcome.resident_end = static_cast<int64_t>(engine->pool().resident_bytes());
  }
  return outcome;
}

void PrintRow(const char* label, const Outcome& o) {
  std::printf("%-7s %9s %9s %9s %9s %7lld %8lld %10lld %9lld\n", label,
              FormatDuration(o.hot.p50).c_str(), FormatDuration(o.hot.p99).c_str(),
              FormatDuration(o.cold.p50).c_str(), FormatDuration(o.cold.p99).c_str(),
              static_cast<long long>(o.hot.reads_failed + o.cold.reads_failed),
              static_cast<long long>(o.page_faults), static_cast<long long>(o.resident_peak),
              static_cast<long long>(o.pool_evictions));
}

}  // namespace

int main() {
  std::printf("=== PAGED-STORAGE: buffer-pool tier vs all-RAM engine ===\n\n");
  std::printf("dataset: %d keys x %zuB values (~1.3MB encoded); paged pool budget %lldKB\n",
              kKeys, kValueBytes, static_cast<long long>(kPoolBytes / 1024));
  std::printf("phases: hot (%d reads over %d pool-resident keys), cold (full shuffled sweep)\n\n",
              kHotReads, kHotKeys);

  Outcome ram = RunScenario(/*paged=*/false);
  Outcome paged = RunScenario(/*paged=*/true);

  std::printf("%-7s %9s %9s %9s %9s %7s %8s %10s %9s\n", "engine", "hot_p50", "hot_p99",
              "cold_p50", "cold_p99", "failed", "faults", "peak_B", "evicts");
  PrintRow("ram", ram);
  PrintRow("paged", paged);

  double hot_ratio = ram.hot.p50 > 0
                         ? static_cast<double>(paged.hot.p50) / static_cast<double>(ram.hot.p50)
                         : 0.0;
  std::printf("\nhot-set reads land in the pool, so the paged engine's p50 should track\n"
              "RAM (%.2fx); the cold sweep pays a fault per miss while eviction holds\n"
              "residency at %lldB against a %lldB budget.\n",
              hot_ratio, static_cast<long long>(paged.resident_end),
              static_cast<long long>(kPoolBytes));

  bool identical = paged.digest == ram.digest && ram.digest != 0;
  bool complete = ram.hot.reads_failed == 0 && ram.cold.reads_failed == 0 &&
                  paged.hot.reads_failed == 0 && paged.cold.reads_failed == 0 &&
                  paged.cold.reads_ok == kKeys;
  bool bounded = paged.resident_peak <= kPoolBytes && paged.budget_overruns == 0;
  bool hot_close = hot_ratio > 0 && hot_ratio <= 2.0;
  bool faulted = paged.page_faults > 0 && paged.pool_evictions > 0;
  bool shape_holds = identical && complete && bounded && hot_close && faulted;
  std::printf("shape check (byte-identical, zero failures, peak<=budget, hot p50<=2x ram,\n"
              "faults+evictions observed): %s\n",
              shape_holds ? "PASS" : "FAIL");

  BenchJson json("paged_storage");
  for (const auto& [label, o] :
       {std::pair<const char*, const Outcome&>{"ram", ram}, {"paged", paged}}) {
    json.BeginRow(label);
    json.Add("hot_p50_us", o.hot.p50);
    json.Add("hot_p99_us", o.hot.p99);
    json.Add("cold_p50_us", o.cold.p50);
    json.Add("cold_p99_us", o.cold.p99);
    json.Add("reads_failed", o.hot.reads_failed + o.cold.reads_failed);
    json.Add("page_faults", o.page_faults);
    json.Add("pages_written_back", o.pages_written_back);
    json.Add("pool_evictions", o.pool_evictions);
    json.Add("resident_peak_bytes", o.resident_peak);
  }
  json.BeginRow("summary");
  json.Add("hot_p50_ratio", hot_ratio);
  json.Add("digest_match", identical ? 1 : 0);
  json.Add("shape_check", shape_holds ? "PASS" : "FAIL");
  (void)json.Write();
  return shape_holds ? 0 : 1;
}
