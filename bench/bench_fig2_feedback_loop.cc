// FIG-2: reproduces paper Figure 2 — the SCADS architecture's provisioning
// feedback loop — by tracing every stage of the loop through a load surge,
// and quantifying why the ML stage matters: the same surge is run with the
// forecasting models enabled and disabled (reactive policy), and the SLA
// violation time is compared. Forecasting should provision *before* the
// surge arrives; the reactive loop eats a violation window roughly equal to
// the instance boot delay.

#include <cstdio>
#include <map>
#include <memory>

#include "cluster/cluster_state.h"
#include "common/benchjson.h"
#include "cluster/node.h"
#include "cluster/rebalancer.h"
#include "cluster/router.h"
#include "director/director.h"
#include "sim/cloud.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "workload/driver.h"
#include "workload/traffic.h"

using namespace scads;  // NOLINT: benchmark brevity

namespace {

struct RunResult {
  int violation_windows = 0;
  int total_windows = 0;
  int peak_fleet = 0;
  std::vector<DirectorSnapshot> trace;
};

RunResult RunSurge(bool use_forecasting, bool print_trace) {
  EventLoop loop;
  SimNetwork network(&loop, 11);
  CloudConfig cloud_config;
  cloud_config.boot_delay_mean = 150 * kSecond;
  cloud_config.boot_delay_jitter = 20 * kSecond;
  SimCloud cloud(&loop, 12, cloud_config);
  ClusterState cluster;
  Router router(1 << 20, &loop, &network, &cluster, RouterConfig{}, 13);
  Rebalancer rebalancer(&loop, &network, &cluster);
  std::map<NodeId, std::unique_ptr<StorageNode>> nodes;
  NodeConfig node_config;
  node_config.watermark_heartbeat = 0;
  node_config.get_service_time = 1000;
  node_config.put_service_time = 1200;
  auto factory = [&](NodeId id) -> StorageNode* {
    auto node = std::make_unique<StorageNode>(id, &loop, &network, &cluster, node_config,
                                              500 + static_cast<uint64_t>(id));
    StorageNode* raw = node.get();
    nodes[id] = std::move(node);
    return raw;
  };
  DirectorConfig config;
  config.min_nodes = 4;
  config.control_interval = 15 * kSecond;
  config.forecast_lead = 4 * kMinute;
  config.default_rate_per_node = 1000;
  config.use_forecasting = use_forecasting;
  Director director(&loop, &cloud, &cluster, &rebalancer, {&router}, config, factory);

  // Load climbs explosively from 4k to 60k req/s around minute 25 — the
  // doubling time (~100s) is shorter than the 150s instance boot delay, so
  // only a policy that provisions ahead can stay inside the SLA.
  TrafficPattern traffic = ViralGrowthTraffic(4000, 60000, 25 * kMinute, 100 * kSecond);
  DriverConfig driver_config;
  driver_config.sample_rate = 30;
  driver_config.mean_service_per_request = 1000;
  WorkloadDriver driver(&loop, &cluster, traffic, driver_config, 14);
  driver.AddOp(WorkloadOp{"get", 1.0, [&](Rng* rng) {
                            std::string key = "k" + std::to_string(rng->Uniform(10000));
                            router.Get(key, RequestOptions{}, [](Result<Record>) {});
                          }});
  director.set_offered_rate_probe([&] { return traffic(loop.Now()); });

  director.Start();
  loop.RunFor(3 * kMinute);
  {
    std::vector<NodeId> ids = cluster.AliveNodes();
    auto map = PartitionMap::CreateUniform(64, ids, 1);
    cluster.set_partitions(std::move(map).value());
  }
  driver.Start();
  loop.RunFor(60 * kMinute);
  driver.Stop();
  director.Stop();

  RunResult result;
  result.trace = director.history();
  for (const auto& snap : result.trace) {
    if (snap.at < 10 * kMinute) continue;  // exclude cold-start windows
    ++result.total_windows;
    if (!snap.sla_ok) ++result.violation_windows;
    result.peak_fleet = std::max(result.peak_fleet, snap.running);
  }
  if (print_trace) {
    std::printf("  (loop stages per control interval: observe -> model -> policy -> act)\n");
    std::printf("  %6s %12s %13s %8s %7s %8s %8s %5s\n", "min", "observed", "forecast+lead",
                "desired", "fleet", "booting", "p99(ms)", "sla");
    for (size_t i = 0; i < result.trace.size(); i += 4) {
      const DirectorSnapshot& s = result.trace[i];
      std::printf("  %6lld %12.0f %13.0f %8d %7d %8d %8.1f %5s\n",
                  static_cast<long long>(s.at / kMinute), s.observed_rate, s.forecast_rate,
                  s.desired_nodes, s.running, s.booting,
                  static_cast<double>(s.latency_at_quantile) / kMillisecond,
                  s.sla_ok ? "ok" : "VIOL");
    }
  }
  return result;
}

}  // namespace

int main() {
  std::printf("=== FIG-2: the provisioning feedback loop, traced ===\n\n");
  std::printf("run A: full loop with ML forecasting (the paper's design)\n");
  RunResult with_ml = RunSurge(/*use_forecasting=*/true, /*print_trace=*/true);
  std::printf("\nrun B: ablation — reactive policy, no forecasting stage\n");
  RunResult reactive = RunSurge(/*use_forecasting=*/false, /*print_trace=*/false);

  std::printf("\n%-28s %14s %14s\n", "", "with ML (A)", "reactive (B)");
  std::printf("%-28s %14d %14d\n", "SLA violation windows", with_ml.violation_windows,
              reactive.violation_windows);
  std::printf("%-28s %14d %14d\n", "total windows", with_ml.total_windows,
              reactive.total_windows);
  std::printf("%-28s %14d %14d\n", "peak fleet", with_ml.peak_fleet, reactive.peak_fleet);
  std::printf("\npaper claim: models of past performance let the system provision\n"
              "ahead of need; measured: forecasting cut violation windows %d -> %d\n",
              reactive.violation_windows, with_ml.violation_windows);
  bool shape_holds = with_ml.violation_windows <= reactive.violation_windows;
  std::printf("shape check (ML <= reactive violations): %s\n", shape_holds ? "PASS" : "FAIL");
  BenchJson json("fig2_feedback_loop");
  for (const auto& [label, run] :
       {std::pair<const char*, const RunResult&>{"with_ml", with_ml}, {"reactive", reactive}}) {
    json.BeginRow(label);
    json.Add("violation_windows", run.violation_windows);
    json.Add("total_windows", run.total_windows);
    json.Add("peak_fleet", run.peak_fleet);
  }
  json.BeginRow("summary");
  json.Add("shape_check", shape_holds ? "PASS" : "FAIL");
  (void)json.Write();
  return shape_holds ? 0 : 1;
}
