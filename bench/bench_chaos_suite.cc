// CHAOS-SUITE: fail-fast reads under a node outage — circuit breaker on vs
// off — plus the recovery telemetry after the node returns.
//
// One fleet shape (5 nodes, rf=3), one deterministic read stream, three
// phases, run identically under both configs:
//
//  * healthy warmup — every node answers; both configs must serve the same
//    bytes (the breaker's defaults keep a healthy fleet untouched).
//  * outage — one replica is cut off at the network layer with NO oracle
//    liveness update (the nastiest case: selection still offers the dead
//    node). A short detection burst is run un-measured — reads issued
//    before the first attempt timeouts even complete cannot have tripped
//    anything, under either config — then the steady-state outage window
//    is measured. Breaker-off keeps paying the full attempt timeout on
//    every read routed to the dead node first; breaker-on tripped during
//    detection and sorts the dead candidate last from then on.
//  * healed — the node reconnects; a half-open probe notices, the breaker
//    closes, and the fleet serves identically again.
//
// Shape claims (self-checked, exit code feeds CI): steady-state outage
// p99 with the breaker is >= 3x lower than breaker-off; healthy-phase
// digests (warmup + healed) are byte-identical across configs; zero
// failed reads anywhere; the breaker opened during the outage and closed
// again after the heal.

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/node.h"
#include "cluster/router.h"
#include "common/benchjson.h"
#include "common/rng.h"
#include "sim/event_loop.h"
#include "sim/network.h"

using namespace scads;  // NOLINT: benchmark brevity

namespace {

constexpr int kNodes = 5;
constexpr int kReplicationFactor = 3;
constexpr int kPartitions = 32;
constexpr int kKeySpace = 20000;
constexpr int kPhaseReads = 4000;
// Detection burst: long enough that the slowest attempt timeout has fired
// and the breaker (when enabled) has tripped before measurement starts.
constexpr int kDetectReads = 2000;
constexpr Duration kReadInterval = 500;  // us -> 2000 reads/s
constexpr NodeId kVictim = 2;

// Spread keys over the 2-byte prefix space CreateUniform partitions on.
std::string KeyOf(uint64_t i) {
  uint32_t spread = static_cast<uint32_t>(i * 2654435761u) & 0xffff;
  std::string key;
  key.push_back(static_cast<char>((spread >> 8) & 0xff));
  key.push_back(static_cast<char>(spread & 0xff));
  key += ":k";
  key += std::to_string(i);
  return key;
}

struct PhaseStats {
  Duration p50 = 0;
  Duration p99 = 0;
  int64_t reads_ok = 0;
  int64_t reads_failed = 0;
  int64_t breaker_skips = 0;
};

struct Outcome {
  PhaseStats healthy;
  PhaseStats outage;
  PhaseStats healed;
  int64_t breaker_opens = 0;
  int64_t breaker_closes = 0;
  int64_t breaker_probes = 0;
  std::string healthy_digest;  // warmup + healed values, in issue order
};

PhaseStats DrainWindow(Router* router) {
  RouterWindow window = router->TakeWindow();
  PhaseStats stats;
  stats.p50 = window.read_latency.ValueAtQuantile(0.50);
  stats.p99 = window.read_latency.ValueAtQuantile(0.99);
  stats.reads_ok = window.reads_ok;
  stats.reads_failed = window.reads_failed;
  stats.breaker_skips = window.breaker_skips;
  return stats;
}

Outcome RunScenario(bool breaker_on) {
  EventLoop loop;
  SimNetwork network(&loop, 53);
  ClusterState cluster;

  NodeConfig node_config;
  node_config.watermark_heartbeat = 0;  // engines seeded directly; isolate
                                        // the BREAKER's effect, not the
                                        // failure detector's
  std::map<NodeId, std::unique_ptr<StorageNode>> nodes;
  std::vector<NodeId> ids;
  for (NodeId id = 1; id <= kNodes; ++id) {
    nodes[id] = std::make_unique<StorageNode>(id, &loop, &network, &cluster, node_config,
                                              100 + static_cast<uint64_t>(id));
    (void)cluster.AddNode(id, nodes[id].get());
    ids.push_back(id);
  }
  cluster.set_partitions(
      std::move(PartitionMap::CreateUniform(kPartitions, ids, kReplicationFactor)).value());

  // Seed every key into each of its replicas so any replica serves the
  // same bytes — the digest compares routing policies, not data placement.
  for (int i = 0; i < kKeySpace; ++i) {
    std::string key = KeyOf(static_cast<uint64_t>(i));
    std::string value = "v" + std::to_string(i);
    for (NodeId id : cluster.partitions()->ForKey(key).replicas) {
      (void)cluster.GetNode(id)->engine()->Put(key, value, Version{1, 0});
    }
  }

  RouterConfig router_config;
  // Uniform selection, deliberately: the load-aware policy routes around a
  // dead node on its own (frozen pressure saturates and p2c steers away),
  // which would conflate two mechanisms. Uniform keeps offering the victim
  // at its full replica share, so the breaker is the ONLY thing standing
  // between a read and a dead-node timeout — the comparison this bench is
  // about.
  router_config.selector.kind = SelectorKind::kUniform;
  router_config.breaker.enabled = breaker_on;
  router_config.breaker.jitter = 0;  // deterministic cross-config digests
  Router router(1 << 20, &loop, &network, &cluster, router_config, 7);

  Outcome outcome;
  Rng key_rng(23);  // same key sequence in both configs

  auto run_phase = [&](int reads, std::vector<std::string>* digest_sink) {
    std::vector<std::string> results(reads);
    Time start = loop.Now();
    for (int i = 0; i < reads; ++i) {
      Time at = start + static_cast<Time>(i) * kReadInterval;
      std::string key = KeyOf(key_rng.Uniform(kKeySpace));
      loop.ScheduleAt(at, [&router, &results, i, key = std::move(key)] {
        router.Get(key, RequestOptions{}, [&results, i](Result<Record> r) {
          results[static_cast<size_t>(i)] =
              r.ok() ? r->value : ("ERR:" + std::to_string(static_cast<int>(r.status().code())));
        });
      });
    }
    loop.RunFor(static_cast<Duration>(reads) * kReadInterval + 10 * kSecond);
    if (digest_sink != nullptr) {
      for (std::string& v : results) digest_sink->push_back(std::move(v));
    }
  };

  std::vector<std::string> healthy_values;

  // Phase 1: healthy warmup.
  run_phase(kPhaseReads, &healthy_values);
  outcome.healthy = DrainWindow(&router);

  // Phase 2: cut the victim off at the network layer only — liveness
  // metadata still says alive, so selection keeps offering it. Outage
  // values stay out of the healthy digest: they depend on timeout-vs-retry
  // timing, which is exactly what differs between the configs.
  network.SetPartitionGroup(kVictim, 5);
  run_phase(kDetectReads, nullptr);  // un-measured detection burst
  (void)router.TakeWindow();
  run_phase(kPhaseReads, nullptr);  // measured steady-state outage
  outcome.outage = DrainWindow(&router);

  // Phase 3: heal; a half-open probe must rediscover the node.
  network.SetPartitionGroup(kVictim, 0);
  run_phase(kPhaseReads, &healthy_values);
  outcome.healed = DrainWindow(&router);

  if (router.breaker() != nullptr) {
    outcome.breaker_opens = router.breaker()->stats().opens;
    outcome.breaker_closes = router.breaker()->stats().closes;
    outcome.breaker_probes = router.breaker()->stats().probes;
  }
  outcome.healthy_digest.reserve(healthy_values.size() * 8);
  for (const std::string& v : healthy_values) {
    outcome.healthy_digest += v;
    outcome.healthy_digest += ';';
  }
  return outcome;
}

void PrintRow(const char* label, const char* phase, const PhaseStats& s) {
  std::printf("%-12s %-8s %10s %10s %9lld %7lld %8lld\n", label, phase,
              FormatDuration(s.p50).c_str(), FormatDuration(s.p99).c_str(),
              static_cast<long long>(s.reads_ok), static_cast<long long>(s.reads_failed),
              static_cast<long long>(s.breaker_skips));
}

}  // namespace

int main() {
  std::printf("=== CHAOS-SUITE: fail-fast reads during an unannounced node outage ===\n\n");
  std::printf("fleet: %d nodes, rf=%d; node %d cut off mid-run with NO liveness update;\n",
              kNodes, kReplicationFactor, kVictim);
  std::printf("%d reads per phase, one per %s.\n\n", kPhaseReads,
              FormatDuration(kReadInterval).c_str());

  Outcome off = RunScenario(/*breaker_on=*/false);
  Outcome on = RunScenario(/*breaker_on=*/true);

  std::printf("%-12s %-8s %10s %10s %9s %7s %8s\n", "mode", "phase", "p50", "p99", "reads_ok",
              "failed", "skips");
  PrintRow("breaker-off", "healthy", off.healthy);
  PrintRow("breaker-off", "outage", off.outage);
  PrintRow("breaker-off", "healed", off.healed);
  PrintRow("breaker-on", "healthy", on.healthy);
  PrintRow("breaker-on", "outage", on.outage);
  PrintRow("breaker-on", "healed", on.healed);

  double p99_ratio = on.outage.p99 > 0
                         ? static_cast<double>(off.outage.p99) / static_cast<double>(on.outage.p99)
                         : 0.0;
  bool digests_match = off.healthy_digest == on.healthy_digest;
  int64_t total_failed = off.healthy.reads_failed + off.outage.reads_failed +
                         off.healed.reads_failed + on.healthy.reads_failed +
                         on.outage.reads_failed + on.healed.reads_failed;

  std::printf("\nbreaker-off keeps paying the full attempt timeout on every read routed\n"
              "to the dead node first; breaker-on tripped during detection (opens=%lld)\n"
              "and sorts the dead candidate last, then a probe re-closes it after heal.\n",
              static_cast<long long>(on.breaker_opens));
  std::printf("steady-state outage p99 %s -> %s (%.1fx); breaker opens=%lld probes=%lld\n"
              "closes=%lld; healthy-phase digests identical: %s; failed reads: %lld\n",
              FormatDuration(off.outage.p99).c_str(), FormatDuration(on.outage.p99).c_str(),
              p99_ratio, static_cast<long long>(on.breaker_opens),
              static_cast<long long>(on.breaker_probes),
              static_cast<long long>(on.breaker_closes), digests_match ? "yes" : "NO",
              static_cast<long long>(total_failed));

  bool shape_holds = p99_ratio >= 3.0 && digests_match && total_failed == 0 &&
                     on.breaker_opens >= 1 && on.breaker_closes >= 1;
  std::printf("shape check (breaker outage p99 >= 3x better, identical healthy digests,\n"
              "no failed reads, breaker opened during outage and re-closed after heal): %s\n",
              shape_holds ? "PASS" : "FAIL");

  BenchJson json("chaos_suite");
  for (const auto& [label, o] : {std::pair<const char*, const Outcome&>{"breaker_off", off},
                                 {"breaker_on", on}}) {
    for (const auto& [phase, s] :
         {std::pair<const char*, const PhaseStats&>{"healthy", o.healthy},
          {"outage", o.outage},
          {"healed", o.healed}}) {
      json.BeginRow(std::string(label) + "_" + phase);
      json.Add("p50_us", s.p50);
      json.Add("p99_us", s.p99);
      json.Add("reads_ok", s.reads_ok);
      json.Add("reads_failed", s.reads_failed);
      json.Add("breaker_skips", s.breaker_skips);
    }
  }
  json.BeginRow("summary");
  json.Add("outage_p99_ratio", p99_ratio);
  json.Add("breaker_opens", on.breaker_opens);
  json.Add("breaker_probes", on.breaker_probes);
  json.Add("breaker_closes", on.breaker_closes);
  json.Add("shape_check", shape_holds ? "PASS" : "FAIL");
  (void)json.Write();
  return shape_holds ? 0 : 1;
}
