// REPLICA-SELECTION: power-of-two-choices replica steering and cross-router
// read coalescing vs the uniform-random baseline.
//
// Two phases, run identically under three configs (uniform / p2c /
// p2c+coalescing):
//
//  * Hot-replica stream: one node of a four-node, rf=3 fleet runs at 90%
//    background utilization (the skew a viral hot range produces between
//    Director rebalances). A stream of point reads crosses every
//    partition. Uniform selection keeps sending ~1/3 of each partition's
//    reads into the hot replica, whose queue is past saturation — every
//    such read eats a second-scale sojourn, and the stream's p99 IS that
//    queue. P2c samples two replicas and serves from the less-pressured
//    one, so the hot node simply stops receiving steerable reads.
//
//  * Same-key read storm: 64 clients (64 Routers) issue the same key
//    simultaneously, round after round — the memcached "multiget hole"
//    shape. Uncoalesced, that is 64 node messages per round; with the
//    cross-router coalescer, one leader fetches and 63 followers are
//    served from its reply (their own staleness/version/deadline bounds
//    still checked), so each round is ONE node message.
//
// Shape claims (self-checked): p2c cuts stream p99 by >= 1.3x vs uniform;
// coalescing cuts storm node messages by >= 4x vs uncoalesced; and all
// three configs return byte-identical result sets in issue order.

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/coalescer.h"
#include "cluster/node.h"
#include "cluster/replica_selector.h"
#include "cluster/router.h"
#include "common/benchjson.h"
#include "common/rng.h"
#include "sim/event_loop.h"
#include "sim/network.h"

using namespace scads;  // NOLINT: benchmark brevity

namespace {

constexpr int kNodes = 4;
constexpr int kReplicationFactor = 3;
constexpr int kPartitions = 32;
constexpr int kKeySpace = 20000;
constexpr int kStreamReads = 8000;
constexpr Duration kStreamInterval = 250;  // us -> 4000 reads/s
constexpr double kHotUtilization = 0.90;
constexpr NodeId kHot = 1;
constexpr int kStormClients = 64;
constexpr int kStormRounds = 50;
constexpr Duration kStormInterval = 2 * kMillisecond;

// Spread keys over the 2-byte prefix space CreateUniform partitions on.
std::string KeyOf(uint64_t i) {
  uint32_t spread = static_cast<uint32_t>(i * 2654435761u) & 0xffff;
  std::string key;
  key.push_back(static_cast<char>((spread >> 8) & 0xff));
  key.push_back(static_cast<char>(spread & 0xff));
  key += ":k";
  key += std::to_string(i);
  return key;
}

struct Outcome {
  Duration p50 = 0;
  Duration p99 = 0;
  int64_t reads_ok = 0;
  int64_t reads_failed = 0;
  int64_t replica_steers = 0;
  int64_t hot_node_picks = 0;
  int64_t storm_node_messages = 0;
  int64_t followers_served = 0;
  std::string digest;  // every result value, in issue order
};

Outcome RunScenario(SelectorKind kind, bool coalesce) {
  EventLoop loop;
  SimNetwork network(&loop, 31);
  ClusterState cluster;

  NodeConfig node_config;
  node_config.watermark_heartbeat = 0;  // engines seeded directly; no streams
  // This scenario studies queueing and message fan-in, not shedding: let
  // the hot node's queue grow instead of turning readers away (a shed
  // would also fork the three configs' result sets).
  node_config.max_queue_delay = 60 * kSecond;
  std::map<NodeId, std::unique_ptr<StorageNode>> nodes;
  std::vector<NodeId> ids;
  for (NodeId id = 1; id <= kNodes; ++id) {
    nodes[id] = std::make_unique<StorageNode>(id, &loop, &network, &cluster, node_config,
                                              100 + static_cast<uint64_t>(id));
    (void)cluster.AddNode(id, nodes[id].get());
    ids.push_back(id);
  }
  cluster.set_partitions(
      std::move(PartitionMap::CreateUniform(kPartitions, ids, kReplicationFactor)).value());

  // Seed every key into each of its replicas (setup, not traffic), so any
  // replica choice serves the same bytes.
  auto seed = [&](const std::string& key, const std::string& value) {
    for (NodeId id : cluster.partitions()->ForKey(key).replicas) {
      (void)cluster.GetNode(id)->engine()->Put(key, value, Version{1, 0});
    }
  };
  for (int i = 0; i < kKeySpace; ++i) {
    seed(KeyOf(static_cast<uint64_t>(i)), "v" + std::to_string(i));
  }
  const std::string storm_key = "storm:hot";
  seed(storm_key, "storm-value");

  CoalescerConfig coalescer_config;
  coalescer_config.enabled = coalesce;
  ReadCoalescer coalescer(&loop, &network, &cluster, coalescer_config);

  RouterConfig router_config;
  router_config.request_timeout = 30 * kSecond;  // queueing study, not failover
  router_config.selector.kind = kind;
  auto make_router = [&](NodeId client_id, uint64_t seed_value) {
    auto router = std::make_unique<Router>(client_id, &loop, &network, &cluster, router_config,
                                           seed_value);
    router->set_coalescer(&coalescer);
    return router;
  };
  auto stream_router = make_router(1 << 20, 7);
  std::vector<std::unique_ptr<Router>> storm_routers;
  for (int c = 0; c < kStormClients; ++c) {
    storm_routers.push_back(make_router((1 << 20) + 1 + c, 200 + static_cast<uint64_t>(c)));
  }

  // The skew: one node saturated by unsampled background traffic.
  nodes[kHot]->SetBackgroundLoad(kHotUtilization, 0);

  Outcome outcome;

  // --- phase A: hot-replica point-read stream ----------------------------
  // Identical key sequences across configs (same seed, same draw order);
  // results land in issue-order slots so the digest is schedule-invariant.
  std::vector<std::string> stream_results(kStreamReads);
  Rng key_rng(23);
  for (int i = 0; i < kStreamReads; ++i) {
    Time at = static_cast<Time>(i) * kStreamInterval;
    std::string key = KeyOf(key_rng.Uniform(kKeySpace));
    loop.ScheduleAt(at, [&stream_router, &stream_results, i, key = std::move(key)] {
      stream_router->Get(key, RequestOptions{}, [&stream_results, i](Result<Record> r) {
        stream_results[static_cast<size_t>(i)] =
            r.ok() ? r->value : ("ERR:" + std::to_string(static_cast<int>(r.status().code())));
      });
    });
  }
  loop.RunFor(static_cast<Duration>(kStreamReads) * kStreamInterval + 60 * kSecond);

  RouterWindow stream_window = stream_router->TakeWindow();
  outcome.p50 = stream_window.read_latency.ValueAtQuantile(0.50);
  outcome.p99 = stream_window.read_latency.ValueAtQuantile(0.99);
  outcome.reads_ok = stream_window.reads_ok;
  outcome.reads_failed = stream_window.reads_failed;
  outcome.replica_steers = stream_window.replica_steers;
  auto hot_picks = stream_window.picks_by_node.find(kHot);
  outcome.hot_node_picks = hot_picks == stream_window.picks_by_node.end() ? 0 : hot_picks->second;

  // --- phase B: 64-client same-key read storm ----------------------------
  int64_t node_messages_before = 0;
  for (NodeId id : ids) node_messages_before += network.sent_to(id);
  std::vector<std::string> storm_results(
      static_cast<size_t>(kStormRounds) * kStormClients);
  Time storm_start = loop.Now();
  for (int round = 0; round < kStormRounds; ++round) {
    Time at = storm_start + static_cast<Time>(round) * kStormInterval;
    for (int c = 0; c < kStormClients; ++c) {
      size_t slot = static_cast<size_t>(round) * kStormClients + static_cast<size_t>(c);
      loop.ScheduleAt(at, [&storm_routers, &storm_results, &storm_key, c, slot] {
        storm_routers[static_cast<size_t>(c)]->Get(
            storm_key, RequestOptions{}, [&storm_results, slot](Result<Record> r) {
              storm_results[slot] =
                  r.ok() ? r->value
                         : ("ERR:" + std::to_string(static_cast<int>(r.status().code())));
            });
      });
    }
  }
  loop.RunFor(static_cast<Duration>(kStormRounds) * kStormInterval + 60 * kSecond);
  int64_t node_messages_after = 0;
  for (NodeId id : ids) node_messages_after += network.sent_to(id);
  outcome.storm_node_messages = node_messages_after - node_messages_before;
  outcome.followers_served = coalescer.stats().followers_served;
  for (const auto& router : storm_routers) {
    RouterWindow window = router->TakeWindow();
    outcome.reads_ok += window.reads_ok;
    outcome.reads_failed += window.reads_failed;
  }

  outcome.digest.reserve((stream_results.size() + storm_results.size()) * 8);
  for (const std::string& v : stream_results) {
    outcome.digest += v;
    outcome.digest += ';';
  }
  for (const std::string& v : storm_results) {
    outcome.digest += v;
    outcome.digest += ';';
  }
  return outcome;
}

void PrintRow(const char* label, const Outcome& o) {
  std::printf("%-14s %9s %9s %9lld %7lld %8lld %10lld %10lld\n", label,
              FormatDuration(o.p50).c_str(), FormatDuration(o.p99).c_str(),
              static_cast<long long>(o.reads_ok), static_cast<long long>(o.reads_failed),
              static_cast<long long>(o.replica_steers),
              static_cast<long long>(o.hot_node_picks),
              static_cast<long long>(o.storm_node_messages));
}

}  // namespace

int main() {
  std::printf("=== REPLICA-SELECTION: p2c steering + cross-router coalescing ===\n\n");
  std::printf("fleet: %d nodes, rf=%d, node %d at %.0f%% background utilization;\n", kNodes,
              kReplicationFactor, kHot, 100.0 * kHotUtilization);
  std::printf("stream: %d point reads, one per %s; storm: %d rounds x %d clients, same key.\n\n",
              kStreamReads, FormatDuration(kStreamInterval).c_str(), kStormRounds,
              kStormClients);

  Outcome uniform = RunScenario(SelectorKind::kUniform, /*coalesce=*/false);
  Outcome p2c = RunScenario(SelectorKind::kPowerOfTwo, /*coalesce=*/false);
  Outcome p2c_coalesce = RunScenario(SelectorKind::kPowerOfTwo, /*coalesce=*/true);

  std::printf("%-14s %9s %9s %9s %7s %8s %10s %10s\n", "mode", "p50", "p99", "reads_ok",
              "failed", "steers", "hot_picks", "storm_msgs");
  PrintRow("uniform", uniform);
  PrintRow("p2c", p2c);
  PrintRow("p2c+coalesce", p2c_coalesce);

  double p99_speedup =
      p2c.p99 > 0 ? static_cast<double>(uniform.p99) / static_cast<double>(p2c.p99) : 0.0;
  double storm_ratio = p2c_coalesce.storm_node_messages > 0
                           ? static_cast<double>(p2c.storm_node_messages) /
                                 static_cast<double>(p2c_coalesce.storm_node_messages)
                           : 0.0;
  bool identical =
      uniform.digest == p2c.digest && p2c.digest == p2c_coalesce.digest;

  std::printf("\nuniform keeps feeding the saturated replica ~1/3 of steerable reads;\n"
              "p2c's second sample steers them to an idle replica, and the coalescer\n"
              "turns each 64-client same-key round into one node message.\n");
  std::printf("stream p99 %s -> %s (%.1fx); storm node messages %lld -> %lld (%.1fx);\n"
              "followers served from shared replies: %lld; identical results: %s\n",
              FormatDuration(uniform.p99).c_str(), FormatDuration(p2c.p99).c_str(), p99_speedup,
              static_cast<long long>(p2c.storm_node_messages),
              static_cast<long long>(p2c_coalesce.storm_node_messages), storm_ratio,
              static_cast<long long>(p2c_coalesce.followers_served), identical ? "yes" : "NO");

  bool shape_holds = p99_speedup >= 1.3 && storm_ratio >= 4.0 && identical &&
                     uniform.reads_failed == 0 && p2c.reads_failed == 0 &&
                     p2c_coalesce.reads_failed == 0;
  std::printf("shape check (p2c p99 >= 1.3x better, >= 4x fewer storm messages, equal\n"
              "results, no failures): %s\n",
              shape_holds ? "PASS" : "FAIL");

  BenchJson json("replica_selection");
  for (const auto& [label, o] : {std::pair<const char*, const Outcome&>{"uniform", uniform},
                                 {"p2c", p2c},
                                 {"p2c_coalesce", p2c_coalesce}}) {
    json.BeginRow(label);
    json.Add("p50_us", o.p50);
    json.Add("p99_us", o.p99);
    json.Add("reads_ok", o.reads_ok);
    json.Add("reads_failed", o.reads_failed);
    json.Add("replica_steers", o.replica_steers);
    json.Add("hot_node_picks", o.hot_node_picks);
    json.Add("storm_node_messages", o.storm_node_messages);
    json.Add("followers_served", o.followers_served);
  }
  json.BeginRow("summary");
  json.Add("p99_speedup", p99_speedup);
  json.Add("storm_message_ratio", storm_ratio);
  json.Add("shape_check", shape_holds ? "PASS" : "FAIL");
  (void)json.Write();
  return shape_holds ? 0 : 1;
}
