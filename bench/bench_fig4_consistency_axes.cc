// FIG-4: reproduces paper Figure 4 — "The Axes of Consistency SCADS
// supports" — by running one measurement per axis that demonstrates the
// example from the paper's table:
//
//   Performance       | 99.9% of requests succeed in <100ms
//   Write Consistency | serializable / merge / last-write-wins
//   Read Consistency  | stale data gone within the bound
//   Session Guarantees| I must read my own writes
//   Durability SLA    | data persists with target probability

#include <cstdio>
#include <string>

#include "cluster/node.h"
#include "common/benchjson.h"
#include "consistency/durability.h"
#include "consistency/session.h"
#include "consistency/spec.h"
#include "consistency/write_policy.h"
#include "core/scads.h"

using namespace scads;  // NOLINT: benchmark brevity

namespace {

bool AxisPerformance() {
  std::printf("--- axis: Performance (99.9%% of reads < 100ms) ---\n");
  ScadsOptions options;
  options.initial_nodes = 4;
  options.consistency_spec = "performance: p99.9 read < 100ms, availability 99.99%\n";
  auto db = std::move(Scads::Create(options)).value();
  (void)db->Start();
  // Seed keys, then read under light load.
  for (int i = 0; i < 50; ++i) {
    Status status = InternalError("pending");
    db->router()->Put("k" + std::to_string(i), "v", AckMode::kPrimary, RequestOptions{},
                      [&](Status s) { status = s; });
    db->RunFor(50 * kMillisecond);
  }
  for (int i = 0; i < 3000; ++i) {
    db->router()->Get("k" + std::to_string(i % 50), RequestOptions{}, [](Result<Record>) {});
    db->RunFor(5 * kMillisecond);
  }
  db->RunFor(kSecond);
  RouterWindow window = db->router()->TakeWindow();
  SlaMonitor monitor(db->spec().performance);
  SlaReport report = monitor.Evaluate(window, db->loop()->Now());
  std::printf("  reads: %lld  p99.9 = %s  within-bound = %.4f  availability = %.4f -> %s\n",
              static_cast<long long>(report.reads),
              FormatDuration(report.read_latency_at_quantile).c_str(),
              report.fraction_within_bound, report.availability,
              report.ok() ? "SLA MET" : "SLA VIOLATED");
  return report.ok();
}

bool AxisWriteConsistency() {
  std::printf("\n--- axis: Write Consistency (serializable | merge | last write wins) ---\n");
  ScadsOptions options;
  options.initial_nodes = 3;
  auto db = std::move(Scads::Create(options)).value();
  (void)db->Start();

  // Serializable: concurrent CAS writers serialize; conflicts retried.
  WritePolicy serializable(db->router(), WriteConsistency::kSerializable);
  Status a = InternalError("pending"), b = InternalError("pending");
  serializable.Put("doc", "writer-a", AckMode::kPrimary, RequestOptions{}, [&](Status s) { a = s; });
  serializable.Put("doc", "writer-b", AckMode::kPrimary, RequestOptions{}, [&](Status s) { b = s; });
  db->RunFor(3 * kSecond);
  bool serializable_ok = a.ok() && b.ok() && serializable.stats().conflicts_retried >= 1;
  std::printf("  serializable: both writers committed after %lld retried conflicts -> %s\n",
              static_cast<long long>(serializable.stats().conflicts_retried),
              serializable_ok ? "ok" : "FAIL");

  // Merge: conflicting carts union.
  WritePolicy merger(db->router(), WriteConsistency::kMergeFunction,
                     [](std::string_view stored, std::string_view incoming) {
                       return std::string(stored) + "," + std::string(incoming);
                     });
  Status m1 = InternalError("pending"), m2 = InternalError("pending");
  merger.Put("cart", "milk", AckMode::kPrimary, RequestOptions{}, [&](Status s) { m1 = s; });
  merger.Put("cart", "eggs", AckMode::kPrimary, RequestOptions{}, [&](Status s) { m2 = s; });
  db->RunFor(3 * kSecond);
  Result<Record> cart(InternalError("pending"));
  db->router()->Get("cart", RequestOptions::PrimaryOnly(), [&](Result<Record> r) { cart = std::move(r); });
  db->RunFor(kSecond);
  bool merge_ok = m1.ok() && m2.ok() && cart.ok() &&
                  cart->value.find("milk") != std::string::npos &&
                  cart->value.find("eggs") != std::string::npos;
  std::printf("  merge: concurrent writers -> '%s' -> %s\n",
              cart.ok() ? cart->value.c_str() : "?", merge_ok ? "ok" : "FAIL");

  // Last write wins: replicas converge on the newest version.
  WritePolicy lww(db->router(), WriteConsistency::kLastWriteWins);
  Status w = InternalError("pending");
  lww.Put("status", "old", AckMode::kPrimary, RequestOptions{}, [&](Status s) { w = s; });
  db->RunFor(100 * kMillisecond);
  lww.Put("status", "new", AckMode::kPrimary, RequestOptions{}, [&](Status s) { w = s; });
  db->RunFor(3 * kSecond);
  Result<Record> status_value(InternalError("pending"));
  db->router()->Get("status", RequestOptions::PrimaryOnly(), [&](Result<Record> r) { status_value = std::move(r); });
  db->RunFor(kSecond);
  bool lww_ok = status_value.ok() && status_value->value == "new";
  std::printf("  last-write-wins: final value '%s' -> %s\n",
              status_value.ok() ? status_value->value.c_str() : "?", lww_ok ? "ok" : "FAIL");
  return serializable_ok && merge_ok && lww_ok;
}

bool AxisReadConsistency() {
  std::printf("\n--- axis: Read Consistency (stale data gone within the bound) ---\n");
  ScadsOptions options;
  options.initial_nodes = 2;
  options.consistency_spec = "staleness: 2s\n";
  auto db = std::move(Scads::Create(options)).value();
  (void)db->Start();
  Status put = InternalError("pending");
  db->router()->Put("item", "fresh-value", AckMode::kPrimary, RequestOptions{}, [&](Status s) { put = s; });
  db->RunFor(500 * kMillisecond);
  // Read via the staleness controller immediately: it must pick a replica
  // that can PROVE freshness within 2s (or go to the primary).
  Result<Record> got(InternalError("pending"));
  bool done = false;
  db->staleness()->Get("item", RequestOptions{}, [&](Result<Record> r) {
    got = std::move(r);
    done = true;
  });
  db->RunFor(2 * kSecond);
  const StalenessStats& stats = db->staleness()->stats();
  bool ok = done && got.ok() && got->value == "fresh-value" && stats.stale_served == 0;
  std::printf("  bound 2s: read returned '%s' (fresh reads=%lld, escalations=%lld, "
              "stale served=%lld) -> %s\n",
              got.ok() ? got->value.c_str() : "?",
              static_cast<long long>(stats.fresh_replica_reads),
              static_cast<long long>(stats.primary_escalations),
              static_cast<long long>(stats.stale_served), ok ? "ok" : "FAIL");
  return ok;
}

bool AxisSessionGuarantees() {
  std::printf("\n--- axis: Session Guarantees (read your own writes) ---\n");
  ScadsOptions options;
  options.initial_nodes = 2;
  options.node_config.replication_flush_interval = 5 * kSecond;  // force lag
  options.consistency_spec = "session: read_your_writes\n";
  auto db = std::move(Scads::Create(options)).value();
  (void)db->Start();
  auto session = db->NewSession();
  Status posted = InternalError("pending");
  session->Put("wall/me", "my-post", AckMode::kPrimary, RequestOptions{}, [&](Status s) { posted = s; });
  db->RunFor(50 * kMillisecond);
  int stale_anomalies = 0;
  for (int i = 0; i < 20; ++i) {
    Result<Record> got(InternalError("pending"));
    bool done = false;
    session->Get("wall/me", RequestOptions{}, [&](Result<Record> r) {
      got = std::move(r);
      done = true;
    });
    db->RunFor(100 * kMillisecond);
    if (!done || !got.ok() || got->value != "my-post") ++stale_anomalies;
  }
  std::printf("  20 reads right after posting: %d failed to see the post "
              "(primary fallbacks used: %lld) -> %s\n",
              stale_anomalies, static_cast<long long>(session->guarantee_fallbacks()),
              stale_anomalies == 0 ? "ok" : "FAIL");
  return stale_anomalies == 0;
}

bool AxisDurability() {
  std::printf("\n--- axis: Durability SLA (probability-driven replication) ---\n");
  FailureModel model;
  std::printf("  %-12s %-4s %-9s %s\n", "target", "rf", "ack", "predicted survival");
  bool monotone = true;
  int last_rf = 0;
  for (double target : {0.9, 0.999, 0.99999, 0.9999999}) {
    auto plan = PlanDurability(target, model);
    if (!plan.ok()) return false;
    std::printf("  %-12.7f %-4d %-9s %.9f\n", target, plan->replication_factor,
                plan->ack_mode == AckMode::kPrimary ? "primary" : "quorum",
                plan->predicted_survival);
    monotone &= plan->replication_factor >= last_rf;
    last_rf = plan->replication_factor;
  }
  // Live check: with the rf for 99.999%, data survives a permanent node loss.
  ScadsOptions options;
  options.initial_nodes = 4;
  options.consistency_spec = "durability: 99.999%\n";
  auto db = std::move(Scads::Create(options)).value();
  (void)db->Start();
  Status put = InternalError("pending");
  db->router()->Put("precious", "data", db->durability_plan().ack_mode, RequestOptions{},
                    [&](Status s) { put = s; });
  db->RunFor(3 * kSecond);
  const PartitionInfo& p = db->cluster()->partitions()->ForKey("precious");
  NodeId victim = p.primary();
  db->cluster()->GetNode(victim)->set_alive(false);
  db->cluster()->SetNodeAlive(victim, false);
  db->network()->SetPartitionGroup(victim, 66);  // permanent loss
  db->RunFor(kSecond);
  Result<Record> got(InternalError("pending"));
  bool done = false;
  db->router()->Get("precious", RequestOptions{}, [&](Result<Record> r) {
    got = std::move(r);
    done = true;
  });
  db->RunFor(3 * kSecond);
  bool survived = done && got.ok() && got->value == "data";
  std::printf("  live: rf=%d write survived permanent primary loss -> %s\n",
              db->durability_plan().replication_factor, survived ? "ok" : "FAIL");
  return monotone && survived;
}

}  // namespace

int main() {
  std::printf("=== FIG-4: the axes of consistency, one measurement per axis ===\n\n");
  bool performance = AxisPerformance();
  bool writes = AxisWriteConsistency();
  bool reads = AxisReadConsistency();
  bool sessions = AxisSessionGuarantees();
  bool durability = AxisDurability();

  std::printf("\n%-20s %s\n", "axis", "verdict");
  std::printf("%-20s %s\n", "performance", performance ? "PASS" : "FAIL");
  std::printf("%-20s %s\n", "write consistency", writes ? "PASS" : "FAIL");
  std::printf("%-20s %s\n", "read consistency", reads ? "PASS" : "FAIL");
  std::printf("%-20s %s\n", "session guarantees", sessions ? "PASS" : "FAIL");
  std::printf("%-20s %s\n", "durability SLA", durability ? "PASS" : "FAIL");
  bool all = performance && writes && reads && sessions && durability;
  std::printf("\nshape check (every axis enforced): %s\n", all ? "PASS" : "FAIL");
  BenchJson json("fig4_consistency_axes");
  json.BeginRow("axes");
  json.Add("performance_check", performance ? "PASS" : "FAIL");
  json.Add("write_consistency_check", writes ? "PASS" : "FAIL");
  json.Add("read_consistency_check", reads ? "PASS" : "FAIL");
  json.Add("session_guarantees_check", sessions ? "PASS" : "FAIL");
  json.Add("durability_check", durability ? "PASS" : "FAIL");
  json.BeginRow("summary");
  json.Add("shape_check", all ? "PASS" : "FAIL");
  (void)json.Write();
  return all ? 0 : 1;
}
