// MULTIGET FAN-OUT: the batched scatter-gather pipeline vs a per-key loop
// for the hydration stage of a two-hop query (paper §3.1: every accepted
// query compiles to a bounded op-set — this bench measures what shipping
// that op-set as one message per storage node buys).
//
// Same cluster, same key sequences, two modes:
//   loop   — N sequential Router::Get round trips (the pre-batching
//            ExecuteTwoHop shape)
//   batch  — one Router::MultiGet for the whole fan-out
//
// Reported per fan-out (10/50/200 keys): messages on the wire, bytes on the
// wire, p50/p99 query latency, queries/sec. Result sets are fingerprinted
// and must be identical across modes.

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/node.h"
#include "cluster/partition.h"
#include "cluster/router.h"
#include "common/benchjson.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/strings.h"
#include "sim/event_loop.h"
#include "sim/network.h"

using namespace scads;  // NOLINT: benchmark brevity

namespace {

constexpr int kNodes = 4;
constexpr int kPartitions = 16;
constexpr int kReplication = 2;
constexpr int64_t kRows = 4000;
constexpr int kQueriesPerFanout = 100;
constexpr NodeId kClient = 1000;
const std::vector<int> kFanouts = {10, 50, 200};

// Spread keys over the 2-byte prefix space CreateUniform partitions on.
std::string UserKey(int64_t id) {
  uint32_t spread = static_cast<uint32_t>(id * 2654435761u) & 0xffff;
  return StrFormat("%04x:user%05lld", spread, static_cast<long long>(id));
}

struct Deployment {
  EventLoop loop;
  SimNetwork network;
  ClusterState cluster;
  std::vector<std::unique_ptr<StorageNode>> nodes;
  std::unique_ptr<Router> router;

  Deployment() : network(&loop, /*seed=*/7) {
    NodeConfig node_config;
    node_config.watermark_heartbeat = 0;  // keep message counts write-driven
    std::vector<NodeId> ids;
    for (int i = 0; i < kNodes; ++i) {
      auto node = std::make_unique<StorageNode>(i, &loop, &network, &cluster, node_config,
                                                1000 + static_cast<uint64_t>(i));
      if (!cluster.AddNode(i, node.get()).ok()) std::exit(1);
      node->Start();
      nodes.push_back(std::move(node));
      ids.push_back(i);
    }
    auto map = PartitionMap::CreateUniform(kPartitions, ids, kReplication);
    if (!map.ok()) std::exit(1);
    cluster.set_partitions(std::move(map).value());
    router = std::make_unique<Router>(kClient, &loop, &network, &cluster, RouterConfig{}, 99);
  }

  void Await(const bool& done) {
    for (int i = 0; i < 50000000 && !done; ++i) {
      if (!loop.RunOne()) loop.RunFor(kMillisecond);
    }
    if (!done) {
      std::fprintf(stderr, "request never completed\n");
      std::exit(1);
    }
  }

  void Load() {
    for (int64_t id = 0; id < kRows; ++id) {
      bool done = false;
      router->Put(UserKey(id), "profile-of-user-" + std::to_string(id), AckMode::kPrimary, RequestOptions{},
                  [&done](Status status) {
                    if (!status.ok()) std::exit(1);
                    done = true;
                  });
      Await(done);
    }
    loop.RunFor(2 * kSecond);  // replication settles; streams go idle
  }
};

struct ModeResult {
  LogHistogram latency;
  int64_t messages = 0;
  int64_t bytes = 0;
  double qps = 0;
  uint64_t fingerprint = 0;
};

uint64_t MixResult(uint64_t h, size_t index, const Result<Record>& result) {
  h = h * 1099511628211ULL + index;
  if (result.ok()) {
    for (char c : result->value) h = h * 1099511628211ULL + static_cast<unsigned char>(c);
  } else {
    h = h * 1099511628211ULL + static_cast<uint64_t>(result.status().code());
  }
  return h;
}

/// The same query key-sets for every mode: kQueriesPerFanout sets of
/// `fanout` keys drawn from a fixed-seed generator.
std::vector<std::vector<std::string>> QueryKeySets(int fanout) {
  Rng rng(0x5eed0000u + static_cast<uint64_t>(fanout));
  std::vector<std::vector<std::string>> sets;
  sets.reserve(kQueriesPerFanout);
  for (int q = 0; q < kQueriesPerFanout; ++q) {
    std::vector<std::string> keys;
    keys.reserve(fanout);
    for (int i = 0; i < fanout; ++i) {
      keys.push_back(UserKey(static_cast<int64_t>(rng.Uniform(kRows))));
    }
    sets.push_back(std::move(keys));
  }
  return sets;
}

ModeResult RunMode(bool batched, int fanout) {
  Deployment deployment;
  deployment.Load();
  std::vector<std::vector<std::string>> queries = QueryKeySets(fanout);

  ModeResult out;
  int64_t messages_before = deployment.network.sent_count();
  int64_t bytes_before = deployment.network.bytes_sent();
  Time started = deployment.loop.Now();

  for (const std::vector<std::string>& keys : queries) {
    Time issued = deployment.loop.Now();
    bool done = false;
    if (batched) {
      deployment.router->MultiGet(
          keys, RequestOptions{},
          [&out, &done, issued, &deployment](std::vector<Result<Record>> results) {
            for (size_t i = 0; i < results.size(); ++i) {
              out.fingerprint = MixResult(out.fingerprint, i, results[i]);
            }
            out.latency.Record(deployment.loop.Now() - issued);
            done = true;
          });
    } else {
      // Per-key loop: the pre-batching shape — one round trip at a time.
      auto fetch = std::make_shared<std::function<void(size_t)>>();
      *fetch = [&out, &done, issued, &deployment, &keys, fetch](size_t i) {
        if (i >= keys.size()) {
          out.latency.Record(deployment.loop.Now() - issued);
          done = true;
          return;
        }
        deployment.router->Get(keys[i], RequestOptions{},
                               [&out, i, fetch](Result<Record> result) {
                                 out.fingerprint = MixResult(out.fingerprint, i, result);
                                 (*fetch)(i + 1);
                               });
      };
      (*fetch)(0);
    }
    deployment.Await(done);
  }

  out.messages = deployment.network.sent_count() - messages_before;
  out.bytes = deployment.network.bytes_sent() - bytes_before;
  Duration elapsed = deployment.loop.Now() - started;
  out.qps = elapsed > 0 ? static_cast<double>(kQueriesPerFanout) /
                              (static_cast<double>(elapsed) / kSecond)
                        : 0;
  return out;
}

}  // namespace

int main() {
  std::printf("=== MULTIGET FAN-OUT: per-key loop vs batched scatter-gather ===\n\n");
  std::printf("%d nodes, %d partitions, rf=%d, %lld rows, %d queries per fan-out\n\n",
              kNodes, kPartitions, kReplication, static_cast<long long>(kRows),
              kQueriesPerFanout);
  std::printf("%7s %-6s %10s %12s %10s %10s %9s %8s\n", "fanout", "mode", "messages",
              "bytes", "p50", "p99", "qps", "msg/qry");

  BenchJson json("multiget_fanout");
  bool shape_holds = true;
  for (int fanout : kFanouts) {
    ModeResult loop_mode = RunMode(/*batched=*/false, fanout);
    ModeResult batch_mode = RunMode(/*batched=*/true, fanout);
    for (const auto& [label, r] :
         {std::pair<const char*, const ModeResult&>{"loop", loop_mode},
          std::pair<const char*, const ModeResult&>{"batch", batch_mode}}) {
      std::printf("%7d %-6s %10lld %12lld %10s %10s %9.1f %8.1f\n", fanout, label,
                  static_cast<long long>(r.messages), static_cast<long long>(r.bytes),
                  FormatDuration(r.latency.ValueAtQuantile(0.5)).c_str(),
                  FormatDuration(r.latency.ValueAtQuantile(0.99)).c_str(), r.qps,
                  static_cast<double>(r.messages) / kQueriesPerFanout);
      json.BeginRow(StrFormat("%s_f%d", label, fanout));
      json.Add("fanout", fanout);
      json.Add("mode", std::string(label));
      json.Add("queries", kQueriesPerFanout);
      json.Add("messages", r.messages);
      json.Add("bytes", r.bytes);
      json.Add("p50_us", r.latency.ValueAtQuantile(0.5));
      json.Add("p99_us", r.latency.ValueAtQuantile(0.99));
      json.Add("qps", r.qps);
    }
    bool identical = loop_mode.fingerprint == batch_mode.fingerprint;
    if (!identical) {
      std::printf("  fan-out %d: RESULT SETS DIFFER between modes\n", fanout);
      shape_holds = false;
    }
    if (fanout == 50) {
      double message_ratio = static_cast<double>(loop_mode.messages) /
                             static_cast<double>(batch_mode.messages);
      double p50_ratio = static_cast<double>(loop_mode.latency.ValueAtQuantile(0.5)) /
                         static_cast<double>(batch_mode.latency.ValueAtQuantile(0.5));
      std::printf("\n50-key fan-out: %.1fx fewer messages (need >=5), %.1fx lower p50 "
                  "(need >=3), result sets %s\n",
                  message_ratio, p50_ratio, identical ? "identical" : "DIFFER");
      if (message_ratio < 5.0 || p50_ratio < 3.0) shape_holds = false;
    }
  }

  std::printf("\npaper claim: scale-independent queries compile to a bounded op-set;\n"
              "shipping that op-set as one message per storage node (instead of one\n"
              "round trip per op) is what keeps the bound cheap at high fan-out.\n");
  if (!json.Write().ok()) {
    std::fprintf(stderr, "failed to write BENCH_multiget_fanout.json\n");
    shape_holds = false;
  }
  std::printf("shape check: %s\n", shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}
