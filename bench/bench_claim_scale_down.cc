// CLAIM-UPDOWN: paper §2.1 — "rapid scale-down is a new goal for massive
// storage systems, as there is now an economic benefit to doing so."
//
// A 48-hour diurnal workload runs twice at equal SLA settings: once with
// the Director free to scale both ways, once with a statically
// peak-provisioned fleet. Output: machine-hours, dollar cost, and SLA
// violation windows. Expected shape: the elastic fleet costs several times
// less at comparable compliance.

#include <cstdio>
#include <map>
#include <memory>

#include "cluster/cluster_state.h"
#include "cluster/node.h"
#include "cluster/rebalancer.h"
#include "cluster/router.h"
#include "director/director.h"
#include "sim/cloud.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "workload/driver.h"
#include "workload/traffic.h"
#include "common/benchjson.h"

using namespace scads;  // NOLINT: benchmark brevity

namespace {

struct RunOutcome {
  int64_t machine_hours = 0;
  int64_t cost_micros = 0;
  int violations = 0;
  int windows = 0;
  int peak_fleet = 0;
  int trough_fleet = 1 << 30;
};

RunOutcome RunDiurnal(bool elastic, int static_fleet_size) {
  EventLoop loop;
  SimNetwork network(&loop, 31);
  SimCloud cloud(&loop, 32);
  ClusterState cluster;
  Router router(1 << 20, &loop, &network, &cluster, RouterConfig{}, 33);
  Rebalancer rebalancer(&loop, &network, &cluster);
  std::map<NodeId, std::unique_ptr<StorageNode>> nodes;
  NodeConfig node_config;
  node_config.watermark_heartbeat = 0;
  node_config.get_service_time = 1000;
  node_config.put_service_time = 1200;
  auto factory = [&](NodeId id) -> StorageNode* {
    auto node = std::make_unique<StorageNode>(id, &loop, &network, &cluster, node_config,
                                              700 + static_cast<uint64_t>(id));
    StorageNode* raw = node.get();
    nodes[id] = std::move(node);
    return raw;
  };

  DirectorConfig config;
  config.control_interval = 30 * kSecond;
  config.default_rate_per_node = 1000;
  config.scale_down_patience = 6;
  config.max_step_down = 6;
  if (elastic) {
    config.min_nodes = 4;
  } else {
    // Static: pin the fleet at peak size by forbidding scale-down and
    // starting at the peak.
    config.min_nodes = static_fleet_size;
    config.max_nodes = static_fleet_size;
  }
  Director director(&loop, &cloud, &cluster, &rebalancer, {&router}, config, factory);

  // Diurnal: 4k trough, peak ~36k at mid-day (~36 busy nodes).
  TrafficPattern traffic = DiurnalTraffic(20000, 16000);
  DriverConfig driver_config;
  driver_config.tick = 5 * kSecond;
  driver_config.sample_rate = 10;
  driver_config.mean_service_per_request = 1000;
  WorkloadDriver driver(&loop, &cluster, traffic, driver_config, 34);
  driver.AddOp(WorkloadOp{"get", 1.0, [&](Rng* rng) {
                            std::string key = "k" + std::to_string(rng->Uniform(100000));
                            router.Get(key, RequestOptions{}, [](Result<Record>) {});
                          }});
  director.set_offered_rate_probe([&] { return traffic(loop.Now()); });

  director.Start();
  loop.RunFor(3 * kMinute);
  {
    std::vector<NodeId> ids = cluster.AliveNodes();
    auto map = PartitionMap::CreateUniform(64, ids, 1);
    cluster.set_partitions(std::move(map).value());
  }
  driver.Start();
  loop.RunFor(48 * kHour);
  driver.Stop();
  director.Stop();

  RunOutcome outcome;
  outcome.machine_hours = cloud.TotalBilledPeriods(loop.Now());
  outcome.cost_micros = cloud.TotalCostMicros(loop.Now());
  for (const auto& snap : director.history()) {
    ++outcome.windows;
    if (!snap.sla_ok) ++outcome.violations;
    outcome.peak_fleet = std::max(outcome.peak_fleet, snap.running);
    if (snap.running > 0) outcome.trough_fleet = std::min(outcome.trough_fleet, snap.running);
  }
  return outcome;
}

}  // namespace

int main() {
  BenchJson json("claim_scale_down");
  std::printf("=== CLAIM-UPDOWN: the economics of scaling down (48h diurnal) ===\n\n");
  std::printf("run A: elastic fleet (Director scales both directions)\n");
  RunOutcome elastic = RunDiurnal(/*elastic=*/true, 0);
  std::printf("  fleet range %d..%d, machine-hours %lld, bill %s, "
              "SLA violations %d/%d\n",
              elastic.trough_fleet, elastic.peak_fleet,
              static_cast<long long>(elastic.machine_hours),
              FormatMoneyMicros(elastic.cost_micros).c_str(), elastic.violations,
              elastic.windows);

  int static_size = elastic.peak_fleet;  // fair comparison: hold the peak
  std::printf("\nrun B: static fleet pinned at the elastic peak (%d nodes)\n", static_size);
  RunOutcome fixed = RunDiurnal(/*elastic=*/false, static_size);
  std::printf("  fleet range %d..%d, machine-hours %lld, bill %s, "
              "SLA violations %d/%d\n",
              fixed.trough_fleet, fixed.peak_fleet, static_cast<long long>(fixed.machine_hours),
              FormatMoneyMicros(fixed.cost_micros).c_str(), fixed.violations, fixed.windows);

  double savings = fixed.cost_micros == 0
                       ? 0.0
                       : 100.0 * static_cast<double>(fixed.cost_micros - elastic.cost_micros) /
                             static_cast<double>(fixed.cost_micros);
  std::printf("\npaper claim: fine-grained billing makes scale-down worth it.\n");
  std::printf("measured: elastic saves %.0f%% of the static bill (%s vs %s)\n", savings,
              FormatMoneyMicros(elastic.cost_micros).c_str(),
              FormatMoneyMicros(fixed.cost_micros).c_str());
  bool shape_holds = elastic.cost_micros < fixed.cost_micros * 7 / 10 &&
                     elastic.violations <= fixed.violations + elastic.windows / 20;
  std::printf("shape check (>=30%% saved at comparable SLA): %s\n",
              shape_holds ? "PASS" : "FAIL");

  for (const auto& [label, outcome] : {std::pair<const char*, const RunOutcome&>{"elastic", elastic},
                                       {"static_peak", fixed}}) {
    json.BeginRow(label);
    json.Add("trough_fleet", outcome.trough_fleet);
    json.Add("peak_fleet", outcome.peak_fleet);
    json.Add("machine_hours", outcome.machine_hours);
    json.Add("cost_micros", outcome.cost_micros);
    json.Add("sla_violations", outcome.violations);
    json.Add("sla_windows", outcome.windows);
  }
  json.BeginRow("summary");
  json.Add("savings_pct", savings);
  json.Add("shape_check", shape_holds ? "PASS" : "FAIL");
  (void)json.Write();
  return shape_holds ? 0 : 1;
}
