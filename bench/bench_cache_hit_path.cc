// CACHE HIT PATH: the staleness-aware read cache under a Zipfian social
// workload (paper §2.2's bargain: the developer declares a staleness bound,
// SCADS exploits it for performance).
//
// Two identical deployments serve the same skewed read-heavy profile
// workload — one with the cache off, one with it on. The cache may only
// serve entries younger than the spec's staleness bound, so correctness is
// identical; the comparison is sampled read latency (p50/p99) and how many
// requests reach the storage nodes.

#include <cstdio>
#include <string>

#include "common/benchjson.h"
#include "common/histogram.h"
#include "core/scads.h"
#include "workload/driver.h"
#include "workload/traffic.h"

using namespace scads;  // NOLINT: benchmark brevity

namespace {

constexpr int64_t kUsers = 2000;
constexpr double kZipfTheta = 0.99;      // typical social-read skew
constexpr double kLogicalRate = 18000;   // req/s of background demand
constexpr double kSampleRate = 50;       // measured requests per second
constexpr Duration kMeasureFor = 100 * kSecond;

struct RunResult {
  LogHistogram read_latency;
  int64_t node_read_requests = 0;  // engine-level gets + scans from samples
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_stale_rejects = 0;
  int64_t sampled_reads = 0;
};

int64_t NodeReadRequests(Scads* db) {
  int64_t total = 0;
  for (NodeId id : db->cluster()->AliveNodes()) {
    StorageNode* node = db->cluster()->GetNode(id);
    if (node == nullptr) continue;
    total += node->engine()->metrics().CounterValue("gets") +
             node->engine()->metrics().CounterValue("scans");
  }
  return total;
}

RunResult Run(bool cache_enabled) {
  ScadsOptions options;
  options.seed = 7;
  options.initial_nodes = 4;
  options.partitions = 16;
  options.consistency_spec = "staleness: 60s\n";
  options.cache_config.enabled = cache_enabled;

  auto db = std::move(Scads::Create(options)).value();
  EntityDef profiles;
  profiles.name = "profiles";
  profiles.fields = {{"user_id", FieldType::kInt64},
                     {"name", FieldType::kString},
                     {"bday", FieldType::kInt64}};
  profiles.key_fields = {"user_id"};
  if (!db->DefineEntity(profiles).ok() || !db->Start().ok()) {
    std::fprintf(stderr, "setup failed\n");
    std::exit(1);
  }
  for (int64_t user = 0; user < kUsers; ++user) {
    Row row;
    row.SetInt("user_id", user);
    row.SetString("name", "user" + std::to_string(user));
    row.SetInt("bday", user % 365);
    if (!db->PutRowSync("profiles", row, RequestOptions{}).ok()) {
      std::fprintf(stderr, "load failed at user %lld\n", static_cast<long long>(user));
      std::exit(1);
    }
  }
  db->RunFor(5 * kSecond);  // replication settles

  RunResult result;
  int64_t node_reads_baseline = NodeReadRequests(db.get());

  DriverConfig driver_config;
  driver_config.sample_rate = kSampleRate;
  driver_config.write_fraction = 0.05;
  WorkloadDriver driver(db->loop(), db->cluster(), ConstantTraffic(kLogicalRate), driver_config,
                        /*seed=*/11);
  Scads* raw = db.get();
  RunResult* out = &result;
  driver.AddOp({"read_profile_zipf", 1.0, [raw, out](Rng* rng) {
                  Row key;
                  key.SetInt("user_id", rng->Zipf(kUsers, kZipfTheta));
                  Time issued = raw->loop()->Now();
                  raw->GetRow("profiles", key, RequestOptions{}, [raw, out, issued](Result<Row> row) {
                    if (!row.ok()) return;
                    out->read_latency.Record(raw->loop()->Now() - issued);
                    ++out->sampled_reads;
                  });
                }});
  driver.Start();
  db->RunFor(kMeasureFor);
  driver.Stop();
  db->RunFor(kSecond);  // let in-flight samples complete

  result.node_read_requests = NodeReadRequests(db.get()) - node_reads_baseline;
  result.cache_hits = db->metrics()->CounterValue("cache.point.hits");
  result.cache_misses = db->metrics()->CounterValue("cache.point.misses");
  result.cache_stale_rejects = db->metrics()->CounterValue("cache.point.stale_rejects");
  return result;
}

void PrintRow(const char* label, const RunResult& r) {
  int64_t lookups = r.cache_hits + r.cache_misses + r.cache_stale_rejects;
  double hit_rate = lookups > 0 ? 100.0 * static_cast<double>(r.cache_hits) /
                                      static_cast<double>(lookups)
                                : 0.0;
  std::printf("%-10s %9lld %12s %12s %14lld %9.1f%%\n", label,
              static_cast<long long>(r.sampled_reads),
              FormatDuration(r.read_latency.ValueAtQuantile(0.5)).c_str(),
              FormatDuration(r.read_latency.ValueAtQuantile(0.99)).c_str(),
              static_cast<long long>(r.node_read_requests), hit_rate);
}

}  // namespace

int main() {
  std::printf("=== CACHE HIT PATH: Zipfian reads, staleness bound 60s ===\n\n");
  std::printf("%lld users, theta=%.2f, %.0f sampled reads/s for %s, %.0f req/s background\n\n",
              static_cast<long long>(kUsers), kZipfTheta, kSampleRate,
              FormatDuration(kMeasureFor).c_str(), kLogicalRate);

  RunResult off = Run(/*cache_enabled=*/false);
  RunResult on = Run(/*cache_enabled=*/true);

  std::printf("%-10s %9s %12s %12s %14s %10s\n", "cache", "samples", "p50", "p99",
              "node reads", "hit rate");
  PrintRow("off", off);
  PrintRow("on", on);

  BenchJson json("cache_hit_path");
  for (const auto& [label, r] : {std::pair<const char*, const RunResult&>{"off", off},
                                 std::pair<const char*, const RunResult&>{"on", on}}) {
    json.BeginRow(label);
    json.Add("samples", r.sampled_reads);
    json.Add("p50_us", r.read_latency.ValueAtQuantile(0.5));
    json.Add("p99_us", r.read_latency.ValueAtQuantile(0.99));
    json.Add("node_reads", r.node_read_requests);
    json.Add("cache_hits", r.cache_hits);
    json.Add("cache_misses", r.cache_misses);
  }
  if (!json.Write().ok()) std::fprintf(stderr, "failed to write BENCH_cache_hit_path.json\n");

  std::printf("\npaper claim: a declared staleness bound is performance the system may\n"
              "spend; serving within-bound reads from cache cuts node load and latency\n"
              "without weakening the declared consistency.\n");
  bool fewer_node_reads = on.node_read_requests < off.node_read_requests;
  bool p50_no_worse =
      on.read_latency.ValueAtQuantile(0.5) < off.read_latency.ValueAtQuantile(0.5);
  std::printf("node reads: %lld -> %lld (%s)\n",
              static_cast<long long>(off.node_read_requests),
              static_cast<long long>(on.node_read_requests),
              fewer_node_reads ? "fewer" : "NOT fewer");
  std::printf("p50: %s -> %s (%s)\n",
              FormatDuration(off.read_latency.ValueAtQuantile(0.5)).c_str(),
              FormatDuration(on.read_latency.ValueAtQuantile(0.5)).c_str(),
              p50_no_worse ? "lower" : "NOT lower");
  bool shape_holds = fewer_node_reads && p50_no_worse;
  std::printf("shape check: %s\n", shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}
